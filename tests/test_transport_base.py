"""Tests for the transport interface: validators, conformance, shims."""

import pytest

from repro.core.framework import SecureSpreadFramework
from repro.gcs import GcsWorld, lan_testbed
from repro.transport import (
    MAX_GROUP_NAME_BYTES,
    MAX_PAYLOAD_BYTES,
    GroupChannel,
    Transport,
    validate_group_name,
    validate_member_name,
    validate_payload_size,
)


class TestValidators:
    def test_valid_group_name_returned(self):
        assert validate_group_name("secure-group") == "secure-group"

    @pytest.mark.parametrize("bad", [None, 7, b"bytes", ["g"]])
    def test_non_string_group_rejected(self, bad):
        with pytest.raises(ValueError, match="group name"):
            validate_group_name(bad)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_group_name("")

    def test_oversized_group_rejected(self):
        name = "g" * (MAX_GROUP_NAME_BYTES + 1)
        with pytest.raises(ValueError, match="exceeds"):
            validate_group_name(name)

    def test_control_characters_rejected(self):
        with pytest.raises(ValueError, match="control"):
            validate_group_name("bad\nname")

    def test_member_name_validator(self):
        assert validate_member_name("alice") == "alice"
        with pytest.raises(ValueError):
            validate_member_name("")
        with pytest.raises(ValueError):
            validate_member_name("x" * 200)

    def test_payload_size_bounds(self):
        assert validate_payload_size(0) == 0
        assert validate_payload_size(MAX_PAYLOAD_BYTES) == MAX_PAYLOAD_BYTES
        with pytest.raises(ValueError):
            validate_payload_size(-1)
        with pytest.raises(ValueError):
            validate_payload_size(MAX_PAYLOAD_BYTES + 1)

    def test_payload_size_type_checked(self):
        with pytest.raises(ValueError):
            validate_payload_size(True)  # bool is not a size
        with pytest.raises(ValueError):
            validate_payload_size(12.5)


class TestBoundaryValidation:
    """The simulator enforces the same rules at its API boundary (a bad
    group name used to surface as an opaque KeyError deep in the ring)."""

    def test_client_join_rejects_bad_group(self):
        world = GcsWorld(lan_testbed())
        client = world.channel("a", 0)
        with pytest.raises(ValueError, match="group name"):
            client.join("")
        with pytest.raises(ValueError, match="group name"):
            client.multicast(None, "payload")

    def test_client_multicast_rejects_oversized_payload(self):
        world = GcsWorld(lan_testbed())
        client = world.channel("a", 0)
        with pytest.raises(ValueError, match="payload"):
            client.multicast("g", "x", size_bytes=MAX_PAYLOAD_BYTES + 1)

    def test_client_name_validated(self):
        world = GcsWorld(lan_testbed())
        with pytest.raises(ValueError, match="member name"):
            world.channel("", 0)


class TestConformance:
    def test_gcs_world_is_a_transport(self):
        world = GcsWorld(lan_testbed())
        assert isinstance(world, Transport)
        assert world.kind == "sim"

    def test_spread_client_is_a_group_channel(self):
        world = GcsWorld(lan_testbed())
        assert isinstance(world.channel("a", 0), GroupChannel)

    def test_asyncio_transport_is_a_transport(self):
        pytest.importorskip("asyncio")
        from repro.net.runner import AsyncioTransport

        transport = AsyncioTransport()
        assert isinstance(transport, Transport)
        assert transport.kind == "asyncio"
        assert transport.machine_count() == 13

    def test_asyncio_transport_has_no_virtual_time(self):
        from repro.net.runner import AsyncioTransport
        from repro.transport import CAP_VIRTUAL_TIME

        transport = AsyncioTransport()
        assert CAP_VIRTUAL_TIME not in transport.capabilities
        with pytest.raises(RuntimeError, match="real time"):
            transport.run_until_idle()


class TestDeprecationShims:
    def test_world_client_warns_and_forwards(self):
        world = GcsWorld(lan_testbed())
        with pytest.warns(DeprecationWarning, match="channel"):
            client = world.client("legacy", 0)
        assert client.name == "legacy"
        assert isinstance(client, GroupChannel)

    def test_framework_topology_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="substrate"):
            framework = SecureSpreadFramework(topology=lan_testbed())
        assert isinstance(framework.transport, GcsWorld)

    def test_framework_rejects_both_forms(self):
        with pytest.raises(ValueError, match="not both"):
            SecureSpreadFramework(lan_testbed(), topology=lan_testbed())

    def test_framework_requires_a_substrate(self):
        with pytest.raises(TypeError, match="substrate"):
            SecureSpreadFramework()

    def test_framework_world_property_on_sim(self):
        framework = SecureSpreadFramework(lan_testbed())
        assert framework.world is framework.transport

    def test_framework_world_property_on_live_transport(self):
        from repro.net.runner import AsyncioTransport

        framework = SecureSpreadFramework(AsyncioTransport())
        with pytest.raises(AttributeError, match="simulator-only"):
            framework.world
