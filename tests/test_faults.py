"""The fault-injection subsystem (`repro.faults`) end to end.

Covers the three fault layers (link faults, daemon crashes, scenario
schedules), the rekey stall watchdog that makes faulty runs converge,
and the chaos benchmark that sweeps them — including the acceptance
bars: deterministic replay of a fixed-seed schedule, and a confirmed
shared key for every protocol under nonzero drop rates.
"""

import pytest

from repro.bench.chaos import run_chaos, chaos_payload
from repro.core import SecureSpreadFramework
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    LinkFaults,
    LinkPolicy,
    NO_FAULTS,
    cascaded_churn,
    coordinator_kill,
    partition_storm,
)
from repro.gcs.daemon import Daemon
from repro.gcs.topology import lan_testbed
from repro.protocols import PROTOCOLS

STALL_MS = 400.0


def _framework(protocol, **kwargs):
    options = dict(dh_group="dh-test")
    options.update(kwargs)
    return SecureSpreadFramework(
        lan_testbed(), default_protocol=protocol, **options
    )


def _settled_group(framework, count):
    members = framework.spawn_members(count)
    for member in members:
        member.join()
        framework.run_until_idle()
    return members


def _one_shared_key(members):
    keys = {m.key_bytes for m in members}
    assert len(keys) == 1 and keys.pop() is not None
    views = {m.protocol.view.view_id for m in members}
    assert len(views) == 1
    for m in members:
        assert m.protocol.done_for(m.protocol.view)


# ---------------------------------------------------------------------------
# link policies


class TestLinkPolicy:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            LinkPolicy(drop=1.5)
        with pytest.raises(ValueError):
            LinkPolicy(duplicate=-0.1)
        with pytest.raises(ValueError):
            LinkPolicy(delay_ms=-1.0)

    def test_noop_detection(self):
        assert NO_FAULTS.is_noop
        assert not LinkPolicy(drop=0.01).is_noop
        assert not LinkPolicy(delay_ms=1.0).is_noop

    def test_dict_roundtrip(self):
        policy = LinkPolicy(drop=0.1, delay_ms=2.0, jitter_ms=1.0,
                            duplicate=0.05, affect_control=True)
        assert LinkPolicy.from_dict(policy.to_dict()) == policy

    def test_verdicts_are_deterministic(self):
        def verdicts(seed):
            faults = LinkFaults.uniform(seed=seed, drop=0.3, jitter_ms=2.0,
                                        duplicate=0.2)
            return [faults.apply(0, 1) for _ in range(200)]

        assert verdicts(7) == verdicts(7)
        assert verdicts(7) != verdicts(8)

    def test_noop_policy_never_draws(self):
        # A no-op injector must not consume randomness: the verdict stream
        # under a per-link override is unchanged by unrelated no-op links.
        faults = LinkFaults.uniform(seed=3, drop=0.5)
        baseline = [faults.apply(0, 1) for _ in range(50)]
        mixed = LinkFaults.uniform(seed=3, drop=0.5)
        mixed.set_pair(4, 5, NO_FAULTS)
        interleaved = []
        for _ in range(50):
            assert mixed.apply(4, 5) == (False, 0.0, None)
            interleaved.append(mixed.apply(0, 1))
        assert interleaved == baseline

    def test_control_frames_exempt_by_default(self):
        faults = LinkFaults.uniform(seed=0, drop=1.0)
        assert faults.apply(0, 1, control=True).drop is False
        assert faults.apply(0, 1, control=False).drop is True
        strict = LinkFaults.uniform(seed=0, drop=1.0, affect_control=True)
        assert strict.apply(0, 1, control=True).drop is True

    def test_scaled_injector(self):
        faults = LinkFaults.uniform(seed=0, drop=0.4, duplicate=0.6)
        doubled = faults.scaled(2.0)
        assert doubled.default_policy.drop == 0.8
        assert doubled.default_policy.duplicate == 1.0  # clamped


# ---------------------------------------------------------------------------
# the network under link faults


class TestNetworkFaults:
    def test_installing_noop_faults_changes_nothing(self):
        def run(with_noop):
            fw = _framework("BD")
            if with_noop:
                fw.world.install_link_faults(LinkFaults(seed=1))
            members = _settled_group(fw, 4)
            return [m.key_bytes for m in members], fw.now

        assert run(False) == run(True)

    def test_dropped_frames_are_recovered(self):
        fw = _framework("BD", stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 5)
        fw.world.install_link_faults(LinkFaults.uniform(seed=2, drop=0.2))
        joiner = fw.member("x", 5)
        joiner.join()
        fw.run_until_idle()
        assert fw.world.network.fault_drops > 0
        assert fw.world.network.fault_retries > 0
        _one_shared_key(members + [joiner])

    def test_duplicate_frames_are_suppressed(self):
        fw = _framework("TGDH", stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 4)
        fw.world.install_link_faults(
            LinkFaults.uniform(seed=5, duplicate=0.5, jitter_ms=1.5)
        )
        joiner = fw.member("x", 4)
        joiner.join()
        fw.run_until_idle()
        assert fw.world.network.fault_duplicates > 0
        _one_shared_key(members + [joiner])

    def test_register_joins_existing_component(self):
        # Regression: a daemon registered while the network is partitioned
        # used to be placed in component 0 regardless of its machine.
        fw = _framework("BD")
        network = fw.world.network
        fw.world.partition([[0, 1, 2], list(range(3, 13))])
        fw.run_until_idle()
        late = Daemon(13, fw.world.topology.machines[4], fw.world)
        network.register(late)
        assert network.component_of(13) == network.component_of(4)
        assert network.component_of(13) != network.component_of(0)
        assert not network.reachable(13, 0)
        assert network.reachable(13, 5)


# ---------------------------------------------------------------------------
# daemon crash / restart


class TestCrashRestart:
    def test_crash_excludes_members_and_group_rekeys(self):
        fw = _framework("TGDH")
        members = _settled_group(fw, 5)
        old_key = members[0].key_bytes
        fw.world.crash_daemon(1)
        fw.run_until_idle()
        survivors = [m for m in members if m.name != "m1"]
        _one_shared_key(survivors)
        assert members[1].client.connected is False
        assert survivors[0].key_bytes != old_key
        assert "m1" not in survivors[0].protocol.view.members

    def test_restarted_daemon_hosts_new_members(self):
        fw = _framework("STR")
        members = _settled_group(fw, 4)
        fw.world.crash_daemon(2)
        fw.run_until_idle()
        fw.world.restart_daemon(2)
        fw.run_until_idle()
        newcomer = fw.member("back", 2)
        newcomer.join()
        fw.run_until_idle()
        survivors = [m for m in members if m.name != "m2"] + [newcomer]
        _one_shared_key(survivors)

    def test_coordinator_kill_schedule(self):
        # Daemon 0 coordinates configuration changes; killing it mid-life
        # forces the survivors to elect the next-lowest daemon.
        fw = _framework("BD")
        members = _settled_group(fw, 5)
        coordinator_kill(machine=0, at_ms=1.0).install(fw)
        fw.run_until_idle()
        survivors = [m for m in members if m.name != "m0"]
        _one_shared_key(survivors)


# ---------------------------------------------------------------------------
# stall detection and coordinated restart


class TestStallRecovery:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_every_protocol_converges_under_drops(self, protocol):
        # The acceptance bar: under a nonzero drop rate, every protocol
        # reaches a confirmed shared key (stall-restart plus frame
        # recovery; which mechanism fires depends on what got dropped).
        fw = _framework(protocol, stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 5)
        fw.world.install_link_faults(LinkFaults.uniform(seed=11, drop=0.12))
        joiner = fw.member("x", 5)
        joiner.join()
        fw.run_until_idle()
        assert fw.world.network.fault_drops > 0
        _one_shared_key(members + [joiner])

    @pytest.mark.parametrize("protocol,fault_seed", [("GDH", 6), ("CKD", 0)])
    def test_stall_restart_fires_and_recovers(self, protocol, fault_seed):
        # GDH and CKD route per-member unicasts over plain FIFO
        # (deliberately not retried), so a dropped one *must* be recovered
        # by the epoch watchdog: stall detected, coordinated restart,
        # fresh key.  The seeds are picked to make that unicast drop
        # happen; determinism keeps it happening.
        fw = _framework(protocol, stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 6)
        fw.world.install_link_faults(
            LinkFaults.uniform(seed=fault_seed, drop=0.15)
        )
        joiner = fw.member("x", 6)
        joiner.join()
        fw.run_until_idle()
        assert fw.rekey_stalls > 0
        assert fw.rekey_restarts > 0
        _one_shared_key(members + [joiner])

    def test_clean_run_never_stalls(self):
        fw = _framework("GDH", stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 5)
        assert fw.rekey_stalls == 0
        assert fw.rekey_restarts == 0
        _one_shared_key(members)

    def test_watchdog_disabled_by_default(self):
        fw = _framework("BD")
        assert fw.stall_timeout_ms is None
        _settled_group(fw, 3)
        assert fw.rekey_stalls == 0


# ---------------------------------------------------------------------------
# fault schedules


class TestFaultSchedule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor-strike")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "heal")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "crash", (("component", 1),))

    def test_spec_roundtrip(self):
        schedule = (
            FaultSchedule()
            .add(10.0, "partition", components=[[0, 1], [2, 3]])
            .add(50.0, "heal")
            .add(70.0, "crash", machine=2)
            .add(90.0, "link", policy=LinkPolicy(drop=0.2).to_dict())
        )
        spec = schedule.to_spec()
        rebuilt = FaultSchedule.from_spec(spec)
        assert rebuilt.to_spec() == spec
        assert [e.action for e in rebuilt] == [
            "partition", "heal", "crash", "link"
        ]

    def test_from_spec_accepts_at_alias(self):
        schedule = FaultSchedule.from_spec([{"at": 5, "action": "heal"}])
        assert schedule.events[0].at_ms == 5.0

    def test_partition_storm_replay_is_bit_reproducible(self):
        # The acceptance bar: a fixed-seed schedule replays identically —
        # same keys, same virtual end time, same injection log.
        def run():
            fw = _framework("TGDH", seed=9, stall_timeout_ms=STALL_MS)
            members = _settled_group(fw, 6)
            schedule = partition_storm(
                [[0, 1, 2], list(range(3, 13))], rounds=2, period_ms=120.0
            )
            schedule.add(5.0, "link", policy={"drop": 0.1})
            schedule.install(fw)
            fw.run_until_idle()
            return (
                [m.key_bytes for m in members],
                fw.now,
                schedule.applied,
                fw.world.network.fault_drops,
            )

        first, second = run(), run()
        assert first == second
        assert len(first[2]) == 5  # 2×(partition+heal) + link
        _ = first

    def test_cascaded_churn_mid_rekey(self):
        fw = _framework("STR", stall_timeout_ms=STALL_MS)
        members = _settled_group(fw, 4)
        cascaded_churn(
            joins=[("j0", 4), ("j1", 5)], leaves=["m1"], gap_ms=2.0
        ).install(fw)
        fw.run_until_idle()
        final = [m for m in members if m.name != "m1"]
        final += [fw._members["j0"], fw._members["j1"]]
        _one_shared_key(final)


# ---------------------------------------------------------------------------
# the chaos benchmark


class TestChaosBench:
    def test_cells_and_zero_drop_control(self):
        cells = run_chaos(
            protocols=("BD",),
            drop_rates=(0.0, 0.2),
            group_size=4,
            dh_group="dh-test",
            engine="symbolic",
            repeats=1,
            seed=4,
        )
        assert [c.drop_rate for c in cells] == [0.0, 0.2]
        control, faulty = cells
        assert control.stalls == 0 and control.restarts == 0
        assert control.fault_drops == 0
        assert control.converged == control.samples == 1
        assert control.completion_rate == 1.0
        assert faulty.fault_drops > 0
        assert faulty.converged == faulty.samples
        assert faulty.time_to_key_ms is not None

    def test_payload_shape(self):
        cells = run_chaos(
            protocols=("TGDH",), drop_rates=(0.1,), group_size=3,
            dh_group="dh-test", repeats=1,
        )
        payload = chaos_payload(cells, seed=0)
        assert payload["benchmark"] == "chaos"
        (cell,) = payload["cells"]
        assert cell["protocol"] == "TGDH"
        assert 0.0 <= cell["completion_rate"] <= 1.0
        for key in ("stalls", "restarts", "fault_drops", "fault_retries"):
            assert isinstance(cell[key], int)
