"""Bandwidth accounting: the communication-efficiency claims of §2.1/§5.

The network counts every byte it carries; protocol messages are sized by
the group elements they carry (partial-key lists, serialized trees, z/X
values) plus signature overhead.  This is the "GDH is, however,
bandwidth-efficient" axis of the paper's trade-off: BD spends few
exponentiations but floods the network.
"""

import pytest

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group


def _bytes_for_join(protocol, size=10):
    framework = SecureSpreadFramework(
        lan_testbed(), default_protocol=protocol, dh_group="dh-512"
    )
    members = framework.spawn_members(size)
    for member in members:
        member.join()
        framework.run_until_idle()
    before = framework.world.network.bytes_sent
    extra = framework.member("x", 5)
    extra.join()
    framework.run_until_idle()
    return framework.world.network.bytes_sent - before


class TestWireBytes:
    @pytest.fixture(scope="class")
    def join_bytes(self):
        return {p: _bytes_for_join(p) for p in PROTOCOLS}

    def test_bd_floods_the_network(self, join_bytes):
        """BD's 2n broadcasts cost more wire bytes than any other
        protocol's join at n=10."""
        assert join_bytes["BD"] == max(join_bytes.values())

    def test_tree_protocols_are_frugal(self, join_bytes):
        assert join_bytes["STR"] < join_bytes["BD"] / 2
        assert join_bytes["TGDH"] < join_bytes["BD"]

    def test_all_joins_cost_nonzero_bytes(self, join_bytes):
        assert all(b > 0 for b in join_bytes.values())


class TestMessageSizing:
    def test_gdh_keylist_carries_n_elements(self):
        loop = build_group(PROTOCOLS["GDH"], 6)
        stats = loop.join("x")
        keylist = [m for m in stats.messages if m.step == "gdh-keylist"][0]
        assert keylist.element_count == 7  # one partial key per member
        assert keylist.size_bytes > 7 * (loop.group.p_bits // 8)

    def test_bd_messages_are_single_element(self):
        loop = build_group(PROTOCOLS["BD"], 6)
        stats = loop.join("x")
        assert all(m.element_count == 1 for m in stats.messages)

    def test_tgdh_tree_broadcast_scales_with_group(self):
        small = build_group(PROTOCOLS["TGDH"], 4)
        big = build_group(PROTOCOLS["TGDH"], 16, prefix="b")
        small_tree = max(
            m.element_count for m in small.join("x").messages
        )
        big_tree = max(m.element_count for m in big.join("y").messages)
        assert big_tree > 2 * small_tree

    def test_element_size_tracks_modulus(self):
        from repro.crypto.groups import GROUP_512, GROUP_1024
        from repro.protocols.loopback import LoopbackGroup

        loop512 = LoopbackGroup(PROTOCOLS["BD"], group=GROUP_512)
        loop1024 = LoopbackGroup(PROTOCOLS["BD"], group=GROUP_1024)
        for loop in (loop512, loop1024):
            for i in range(3):
                loop.join(f"m{i}")
        m512 = loop512.last_stats.messages[0].size_bytes
        m1024 = loop1024.last_stats.messages[0].size_bytes
        assert m1024 - m512 == (1024 - 512) // 8
