"""Tests for ordered delivery, views, and the client API."""

import pytest

from repro.gcs import GcsWorld, ViewEvent, lan_testbed, wan_testbed


@pytest.fixture()
def world():
    return GcsWorld(lan_testbed())


def _setup_group(world, names, group="g"):
    clients = world.spawn_clients(names)
    for client in clients:
        # Sequential joins fix the join-age order to the listing order.
        client.join(group)
        world.run_until_idle()
    return clients


class TestJoinLeave:
    def test_join_delivers_view_to_all_members(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        assert alice.views[-1].members == ("alice", "bob")
        assert bob.views[-1].members == ("alice", "bob")
        assert bob.views[-1].event is ViewEvent.JOIN

    def test_members_ordered_by_join_age(self, world):
        clients = _setup_group(world, ["c3", "c1", "c2"])
        final = clients[0].views[-1]
        assert final.members == ("c3", "c1", "c2")
        assert final.oldest == "c3"
        assert final.newest == "c2"

    def test_leave_delivers_view_without_leaver(self, world):
        alice, bob, carol = _setup_group(world, ["alice", "bob", "carol"])
        bob.leave("g")
        world.run_until_idle()
        assert alice.views[-1].members == ("alice", "carol")
        assert alice.views[-1].left == ("bob",)
        assert alice.views[-1].event is ViewEvent.LEAVE

    def test_leaver_gets_final_view(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        bob.leave("g")
        world.run_until_idle()
        assert bob.views[-1].members == ("alice",)
        assert "bob" not in bob.views[-1]

    def test_view_sequences_identical_at_all_members(self, world):
        clients = _setup_group(world, [f"m{i}" for i in range(8)])
        clients[3].leave("g")
        clients[5].leave("g")
        world.run_until_idle()
        # Members observe the same suffix of views after they joined.
        reference = [v.members for v in clients[0].views[-3:]]
        for client in clients[:3]:
            assert [v.members for v in client.views[-3:]] == reference

    def test_disconnect_acts_as_leave(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        bob.disconnect()
        world.run_until_idle()
        assert alice.views[-1].members == ("alice",)
        with pytest.raises(RuntimeError):
            bob.multicast("g", "zombie")

    def test_duplicate_client_name_rejected(self, world):
        world.channel("dup", 0)
        with pytest.raises(ValueError):
            world.channel("dup", 1)


class TestAgreedOrdering:
    def test_all_members_deliver_same_order(self, world):
        clients = _setup_group(world, [f"m{i}" for i in range(6)])
        # Concurrent sends from every member.
        for i, client in enumerate(clients):
            client.multicast("g", f"msg-{i}")
        world.run_until_idle()
        reference = [m.payload for m in clients[0].received]
        assert len(reference) == 6
        for client in clients[1:]:
            assert [m.payload for m in client.received] == reference

    def test_sender_included_in_delivery(self, world):
        (alice,) = _setup_group(world, ["alice"])
        alice.multicast("g", "to-myself")
        world.run_until_idle()
        assert [m.payload for m in alice.received] == ["to-myself"]

    def test_fifo_order_from_single_sender(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        for i in range(10):
            alice.multicast("g", i)
        world.run_until_idle()
        assert [m.payload for m in bob.received] == list(range(10))

    def test_targeted_agreed_message_delivered_only_to_target(self, world):
        alice, bob, carol = _setup_group(world, ["alice", "bob", "carol"])
        alice.multicast("g", "secret", target="carol")
        world.run_until_idle()
        assert [m.payload for m in carol.received] == ["secret"]
        assert bob.received == []

    def test_non_members_do_not_receive(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        outsider = world.channel("eve", 5)
        alice.multicast("g", "private")
        world.run_until_idle()
        assert outsider.received == []

    def test_two_groups_are_independent(self, world):
        alice = world.channel("alice", 0)
        bob = world.channel("bob", 1)
        alice.join("g1")
        bob.join("g2")
        world.run_until_idle()
        alice.multicast("g1", "for-g1")
        world.run_until_idle()
        assert bob.received == []


class TestUnicast:
    def test_fifo_unicast_delivered_to_target_only(self, world):
        alice, bob, carol = _setup_group(world, ["alice", "bob", "carol"])
        alice.unicast("g", "bob", "hi bob")
        world.run_until_idle()
        assert [m.payload for m in bob.received] == ["hi bob"]
        assert carol.received == []

    def test_unicast_to_unknown_member_dropped(self, world):
        (alice,) = _setup_group(world, ["alice"])
        alice.unicast("g", "ghost", "anyone there?")
        world.run_until_idle()  # must not raise

    def test_unicast_cheaper_than_agreed_on_wan(self):
        """S6.2.2: an Agreed message costs far more than a raw unicast - the
        reason GDH's factor-out round dominates its WAN performance."""
        wan = GcsWorld(wan_testbed())
        a, b = wan.channel("a", 0), wan.channel("b", 12)
        a.join("g")
        b.join("g")
        wan.run_until_idle()
        stamps = {}
        b.on_message = lambda _c, m: stamps.setdefault(m.payload, wan.now)
        t0 = wan.now
        a.unicast("g", "b", "u")
        a.multicast("g", "a")
        wan.run_until_idle()
        assert stamps["u"] - t0 < stamps["a"] - t0


class TestLatencyBands:
    def test_lan_agreed_delivery_a_few_milliseconds(self, world):
        alice, bob = _setup_group(world, ["alice", "bob"])
        stamp = {}
        bob.on_message = lambda _c, m: stamp.setdefault("t", world.now)
        t0 = world.now
        alice.multicast("g", "x")
        world.run_until_idle()
        assert 0.5 < stamp["t"] - t0 < 5.0

    def test_wan_agreed_delivery_hundreds_of_milliseconds(self):
        wan = GcsWorld(wan_testbed())
        a = wan.channel("a", 0)
        b = wan.channel("b", 12)
        a.join("g"); b.join("g")
        wan.run_until_idle()
        stamp = {}
        b.on_message = lambda _c, m: stamp.setdefault("t", wan.now)
        t0 = wan.now
        a.multicast("g", "x")
        wan.run_until_idle()
        assert 100 < stamp["t"] - t0 < 500
