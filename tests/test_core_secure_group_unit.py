"""Unit-level tests of SecureGroupMember internals."""

import pytest

from repro.core import SecureSpreadFramework
from repro.core.secure_group import _message_bytes, sorted_repr
from repro.gcs.topology import lan_testbed
from repro.protocols.base import ProtocolMessage


def _framework(**kwargs):
    defaults = dict(dh_group="dh-test")
    defaults.update(kwargs)
    return SecureSpreadFramework(lan_testbed(), default_protocol="BD", **defaults)


class TestSigning:
    def test_message_bytes_deterministic(self):
        a = ProtocolMessage("BD", (1, 1), "bd-z", "alice", {"z": 5, "a": 1})
        b = ProtocolMessage("BD", (1, 1), "bd-z", "alice", {"a": 1, "z": 5})
        assert _message_bytes(a) == _message_bytes(b)

    def test_message_bytes_sensitive_to_content(self):
        a = ProtocolMessage("BD", (1, 1), "bd-z", "alice", {"z": 5})
        b = ProtocolMessage("BD", (1, 1), "bd-z", "alice", {"z": 6})
        c = ProtocolMessage("BD", (1, 2), "bd-z", "alice", {"z": 5})
        assert _message_bytes(a) != _message_bytes(b)
        assert _message_bytes(a) != _message_bytes(c)

    def test_sorted_repr_handles_mixed_keys(self):
        assert sorted_repr({"b": 1, "a": 2}) == sorted_repr({"a": 2, "b": 1})

    def test_forged_signature_rejected_with_real_crypto(self):
        fw = _framework(sign_for_real=True, rsa_bits=256)
        a = fw.member("a", 0)
        b = fw.member("b", 1)
        a.join()
        fw.run_until_idle()
        b.join()
        fw.run_until_idle()
        assert a.key_bytes == b.key_bytes
        # Inject a forged protocol message claiming to come from 'a'.
        forged = ProtocolMessage(
            "BD", b.protocol.view.view_id, "bd-z", "a", {"z": 1234}
        )
        before = b.protocol.ledger.snapshot()
        b._handle_protocol_message("a", forged, signature=99999)
        delta = b.protocol.ledger.delta_since(before)
        assert delta.verifications == 1  # it was checked...
        assert delta.exp_count() == 0  # ...and dropped before processing

    def test_signature_cost_charged_even_without_real_crypto(self):
        fw = _framework(sign_for_real=False)
        a = fw.member("a", 0)
        b = fw.member("b", 1)
        a.join()
        fw.run_until_idle()
        b.join()
        fw.run_until_idle()
        snap = a.protocol.ledger.snapshot()
        assert snap.signatures >= 1
        assert snap.verifications >= 1


class TestStateGuards:
    def test_key_bytes_none_before_first_epoch(self):
        fw = _framework()
        member = fw.member("solo", 0)
        assert member.key_bytes is None
        assert not member.is_secure

    def test_send_before_keyed_is_queued_not_lost(self):
        fw = _framework()
        a = fw.member("a", 0)
        b = fw.member("b", 1)
        a.join()
        b.join()
        a.send_secure(b"early bird")  # queued: epoch not established yet
        fw.run_until_idle()
        assert ("a", b"early bird") in b.inbox

    def test_secure_views_recorded_in_order(self):
        fw = _framework()
        members = fw.spawn_members(3)
        for member in members:
            member.join()
            fw.run_until_idle()
        sizes = [len(v.members) for v in members[0].secure_views]
        assert sizes == sorted(sizes)

    def test_unknown_payload_kind_raises(self):
        fw = _framework()
        member = fw.member("solo", 0)
        member.join()
        fw.run_until_idle()
        from repro.gcs.messages import GroupMessage

        bogus = GroupMessage(group="secure-group", sender="x",
                             payload=("mystery", 1))
        with pytest.raises(ValueError):
            member._on_message(member.client, bogus)
