"""Tests for the asyncio backend: wire framing, daemon state, live rekey.

The full secure-group loopback smokes are ``slow``-marked (they run the
real crypto engine against wall-clock time); the framing, membership and
handshake tests are tier-1.
"""

import asyncio

import pytest

from repro.gcs.messages import ViewEvent
from repro.net.client import NetClient
from repro.net.daemon import NetDaemon
from repro.net.runner import LiveGroupRunner, run_live
from repro.net.views import MembershipTable
from repro.net.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameType,
    WireError,
    decode_payload,
    encode_payload,
    pack_frame,
    read_frame,
)


class TestWire:
    def _roundtrip(self, ftype, body):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(pack_frame(ftype, body))
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_frame_roundtrip(self):
        ftype, body = self._roundtrip(
            FrameType.MULTICAST, {"group": "g", "payload": b"x" * 100}
        )
        assert ftype is FrameType.MULTICAST
        assert body == {"group": "g", "payload": b"x" * 100}

    def test_payload_roundtrip_preserves_objects(self):
        payload = ("key-agreement", {"step": 1}, None, 0)
        assert decode_payload(encode_payload(payload)) == payload

    def test_oversized_frame_rejected_on_pack(self):
        with pytest.raises(WireError, match="cap"):
            pack_frame(FrameType.MULTICAST, {"blob": b"x" * MAX_FRAME_BYTES})

    def test_bad_length_prefix_rejected(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff" + b"junk")
            reader.feed_eof()
            with pytest.raises(WireError, match="out of bounds"):
                await read_frame(reader)

        asyncio.run(go())

    def test_unknown_frame_type_rejected(self):
        async def go():
            reader = asyncio.StreamReader()
            blob = b"\x00\x00\x00\x02" + bytes((250,)) + b"x"
            reader.feed_data(blob)
            reader.feed_eof()
            with pytest.raises(WireError, match="unknown frame type"):
                await read_frame(reader)

        asyncio.run(go())


class TestMembershipTable:
    def test_join_age_ordering(self):
        table = MembershipTable()
        table.join("g", "c")
        table.join("g", "a")
        table.join("g", "b")
        assert table.members("g") == ("c", "a", "b")

    def test_duplicate_join_is_none(self):
        table = MembershipTable()
        assert table.join("g", "a") is not None
        assert table.join("g", "a") is None

    def test_leave_view_and_absent_leave(self):
        table = MembershipTable()
        table.join("g", "a")
        table.join("g", "b")
        view = table.leave("g", "a")
        assert view.members == ("b",)
        assert view.left == ("a",)
        assert view.event is ViewEvent.LEAVE
        assert table.leave("g", "zz") is None

    def test_view_ids_totally_ordered(self):
        table = MembershipTable()
        first = table.join("g", "a")
        second = table.join("h", "a")
        third = table.leave("g", "a")
        assert first.view_id < second.view_id < third.view_id

    def test_disconnect_leaves_every_group(self):
        table = MembershipTable()
        table.join("g", "a")
        table.join("h", "a")
        table.join("g", "b")
        views = table.disconnect("a")
        assert {view.group for view in views} == {"g", "h"}
        assert table.members("g") == ("b",)
        assert table.members("h") == ()


class TestHandshake:
    def _connect_raw(self, hello_frames):
        """Open a raw socket to an inline daemon, send frames, read one."""

        async def go():
            daemon = NetDaemon()
            port = await daemon.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for frame in hello_frames:
                    writer.write(frame)
                await writer.drain()
                ftype, body = await asyncio.wait_for(read_frame(reader), timeout=5)
                writer.close()
                return ftype, body
            finally:
                await daemon.stop()

        return asyncio.run(go())

    def test_welcome_on_valid_hello(self):
        ftype, body = self._connect_raw(
            [pack_frame(FrameType.HELLO, {"name": "a", "version": WIRE_VERSION})]
        )
        assert ftype is FrameType.WELCOME
        assert body["config_id"] == (1, 0)

    def test_bad_name_rejected_with_error_frame(self):
        ftype, body = self._connect_raw(
            [pack_frame(FrameType.HELLO, {"name": "", "version": WIRE_VERSION})]
        )
        assert ftype is FrameType.ERROR
        assert "member name" in body["error"]

    def test_version_mismatch_rejected(self):
        ftype, body = self._connect_raw(
            [pack_frame(FrameType.HELLO, {"name": "a", "version": 99})]
        )
        assert ftype is FrameType.ERROR
        assert "version" in body["error"]

    def test_duplicate_name_rejected(self):
        async def go():
            daemon = NetDaemon()
            port = await daemon.start()
            try:
                first = NetClient("dup", port=port)
                await first.connect()
                second = NetClient("dup", port=port)
                with pytest.raises(ConnectionError, match="already in use"):
                    await second.connect()
                await first.aclose()
            finally:
                await daemon.stop()

        asyncio.run(go())

    def test_heartbeat_expiry_suspects_client(self):
        async def go():
            daemon = NetDaemon(heartbeat_timeout_s=0.2)
            port = await daemon.start()
            try:
                quiet = NetClient("quiet", port=port, heartbeat_interval_s=60)
                witness = NetClient("witness", port=port, heartbeat_interval_s=0.05)
                await quiet.connect()
                await witness.connect()
                quiet.join("g")
                witness.join("g")
                await asyncio.sleep(0.1)
                # Stop the quiet client's tasks: no more frames, ever.
                for task in quiet._tasks:
                    task.cancel()
                deadline = asyncio.get_event_loop().time() + 5
                while "quiet" in daemon.sessions:
                    assert asyncio.get_event_loop().time() < deadline
                    await asyncio.sleep(0.05)
                assert daemon.suspected == 1
                await asyncio.sleep(0.1)
                assert witness.views[-1].members == ("witness",)
                await witness.aclose()
                await quiet.aclose()
            finally:
                await daemon.stop()

        asyncio.run(go())


class TestRunnerValidation:
    def test_size_bounds(self):
        with pytest.raises(ValueError, match="at least 2"):
            LiveGroupRunner(size=1)

    def test_daemon_mode_validated(self):
        with pytest.raises(ValueError, match="spawn.*inline|inline.*spawn"):
            LiveGroupRunner(daemon_mode="carrier-pigeon")


@pytest.mark.slow
class TestLiveRekey:
    """Full secure-group smoke over loopback TCP (real crypto, wall time)."""

    def test_inline_daemon_rekey(self):
        result = run_live(
            protocol="TGDH",
            size=4,
            daemon_mode="inline",
            timeout_s=60,
            heartbeat_interval_s=0.5,
        )
        assert result["join"]["total_ms"] > 0
        assert result["leave"]["total_ms"] > 0
        assert result["rekey_ms"]["count"] > 0
        assert result["rekey_ms"]["max"] > 0

    def test_spawned_daemon_rekey(self):
        result = run_live(
            protocol="BD",
            size=4,
            daemon_mode="spawn",
            timeout_s=60,
            heartbeat_interval_s=0.5,
        )
        assert result["daemon"]["mode"] == "spawn"
        assert result["join"]["total_ms"] > 0
        assert result["leave"]["total_ms"] > 0
        assert result["rekey_ms"]["count"] > 0
