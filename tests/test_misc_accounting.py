"""Small accounting/introspection APIs not covered elsewhere."""

import pytest

from repro.gcs import GcsWorld, lan_testbed
from repro.sim.cpu import Machine
from repro.sim.engine import Simulator


def test_machine_utilization_horizon():
    sim = Simulator()
    machine = Machine("m0", cores=2)
    machine.submit(sim, 10)
    machine.submit(sim, 30)
    assert machine.utilization_horizon() == 30


def test_simulator_pending_counter():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    cancelled = sim.schedule(6, lambda: None)
    assert sim.pending == 2
    cancelled.cancel()
    # active_pending is the honest queue depth: it excludes cancelled
    # events that still sit in the heap.
    assert sim.pending == 2
    assert sim.active_pending == 1
    sim.run_until_idle()
    assert sim.pending == 0
    assert sim.active_pending == 0


def test_network_counts_drops_across_partition():
    world = GcsWorld(lan_testbed())
    a = world.channel("a", 0)
    b = world.channel("b", 1)
    a.join("g")
    world.run_until_idle()
    b.join("g")
    world.run_until_idle()
    dropped_before = world.network.frames_dropped
    # Partition with slow detection: a's dissemination still targets the
    # full old configuration, so frames to the far side are dropped.
    world.partition([[0], list(range(1, 13))], detection_delay_ms=50.0)
    a.multicast("g", "into the void")
    world.run_until_idle()
    assert world.network.frames_dropped > dropped_before


def test_network_rejects_malformed_partitions():
    world = GcsWorld(lan_testbed())
    with pytest.raises(ValueError):
        world.network.set_partition([[0, 1], [1, 2]])  # overlapping
    with pytest.raises(ValueError):
        world.network.set_partition([[0, 1]])  # not covering
