"""Formula-vs-measurement cross-validation of the Table 1 cost model.

Every exact closed-form entry must equal the instrumented counts of an
actual protocol run; bound entries must dominate the measurements.
"""

import pytest

from repro.analysis.costs import EVENTS, conceptual_cost
from repro.analysis.table1 import render_table1, table1_rows
from repro.gcs.messages import ViewEvent
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group

SIZES = (4, 7, 11, 16)


def _measure(protocol_cls, event, n, m=4, p=3):
    loop = build_group(protocol_cls, n, prefix=f"{event.value}{n}-")
    if event is ViewEvent.JOIN:
        return loop.join("x")
    if event is ViewEvent.LEAVE:
        return loop.leave(f"{event.value}{n}-{n // 2}")
    if event is ViewEvent.MERGE:
        return loop.mass_join([f"z{i}" for i in range(m)])
    return loop.mass_leave([f"{event.value}{n}-{i}" for i in range(1, p + 1)])


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
@pytest.mark.parametrize("event", EVENTS)
@pytest.mark.parametrize("n", SIZES)
def test_formula_matches_or_bounds_measurement(protocol, event, n):
    m, p = 4, min(3, n - 2)
    stats = _measure(PROTOCOLS[protocol], event, n, m=m, p=p)
    sponsor = None
    if protocol == "STR" and event in (ViewEvent.LEAVE, ViewEvent.PARTITION):
        # Leaving m{n//2} (leave) or m1..mp (partition) fixes the sponsor.
        sponsor = n // 2 if event is ViewEvent.LEAVE else 1
    cost = conceptual_cost(protocol, event, n=n, m=m, p=p,
                           str_sponsor_position=sponsor)
    measured = {
        "rounds": stats.rounds,
        "messages": stats.total_messages,
        "unicasts": stats.unicasts,
        "multicasts": stats.broadcasts,
        "serial_exponentiations": stats.max_exponentiations(),
        "total_exponentiations": stats.exponentiations(),
    }
    formula = {
        "rounds": cost.rounds,
        "messages": cost.messages,
        "unicasts": cost.unicasts,
        "multicasts": cost.multicasts,
        "serial_exponentiations": cost.serial_exponentiations,
        "total_exponentiations": cost.total_exponentiations,
    }
    if cost.exact:
        assert measured == formula, f"{protocol} {event.value} n={n}"
    else:
        for key in measured:
            assert measured[key] <= formula[key], (
                f"{protocol} {event.value} n={n}: {key} "
                f"measured {measured[key]} > bound {formula[key]}"
            )


class TestValidation:
    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            conceptual_cost("NOPE", ViewEvent.JOIN, n=5)

    def test_tiny_group_rejected(self):
        with pytest.raises(ValueError):
            conceptual_cost("BD", ViewEvent.JOIN, n=1)

    def test_no_survivors_rejected(self):
        with pytest.raises(ValueError):
            conceptual_cost("BD", ViewEvent.PARTITION, n=4, p=4)
        with pytest.raises(ValueError):
            conceptual_cost("BD", ViewEvent.PARTITION, n=4, p=3)
        with pytest.raises(ValueError):
            conceptual_cost("GDH", ViewEvent.LEAVE, n=2)


class TestTable1Rendering:
    def test_symbolic_grid_has_twenty_rows(self):
        rows = table1_rows()
        assert len(rows) == 20  # 5 protocols x 4 events

    def test_symbolic_entries_match_paper_claims(self):
        rows = {(prot, ev): cells for prot, ev, cells in table1_rows()}
        assert rows[("GDH", "Join")]["rounds"] == "4"
        assert rows[("GDH", "Merge")]["rounds"] == "m+3"
        assert rows[("BD", "Join")]["exponentiations"] == "3"
        assert rows[("TGDH", "Leave")]["messages"] == "1"
        assert rows[("STR", "Join")]["rounds"] == "2"
        assert rows[("CKD", "Join")]["rounds"] == "3"

    def test_evaluated_grid(self):
        rows = {(prot, ev): cells for prot, ev, cells in table1_rows(n=10)}
        assert rows[("GDH", "Join")]["messages"] == "13"  # n+3
        assert rows[("BD", "Join")]["messages"] == "22"  # 2(n+1)

    def test_render_contains_all_protocols(self):
        text = render_table1()
        for protocol in PROTOCOLS:
            assert protocol in text
        evaluated = render_table1(n=12)
        assert "n=12" in evaluated
