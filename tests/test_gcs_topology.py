"""Tests for testbed topologies and link modelling."""

import pytest

from repro.gcs.topology import (
    Topology,
    lan_testbed,
    medium_wan_testbed,
    wan_testbed,
)
from repro.sim.cpu import Machine


class TestLanTestbed:
    def test_thirteen_dual_cpu_machines(self):
        topo = lan_testbed()
        assert len(topo.machines) == 13
        assert all(m.cores == 2 for m in topo.machines)
        assert all(m.speed == 1.0 for m in topo.machines)

    def test_single_site(self):
        assert lan_testbed().sites == ["jhu-lan"]

    def test_sub_millisecond_links(self):
        topo = lan_testbed()
        assert topo.one_way_ms(topo.machines[0], topo.machines[1]) < 1.0

    def test_same_machine_cheaper_than_lan_link(self):
        topo = lan_testbed()
        m = topo.machines[0]
        assert topo.one_way_ms(m, m) < topo.one_way_ms(m, topo.machines[1])


class TestWanTestbed:
    def test_thirteen_machines_three_sites(self):
        topo = wan_testbed()
        assert len(topo.machines) == 13
        assert topo.sites == ["jhu", "uci", "icu"]

    def test_paper_figure13_round_trips(self):
        """Figure 13: JHU-UCI 35 ms, UCI-ICU 150 ms, ICU-JHU 135 ms."""
        topo = wan_testbed()
        jhu = topo.machine("jhu0")
        uci = topo.machine("uci0")
        icu = topo.machine("icu0")
        assert topo.round_trip_ms(jhu, uci) == pytest.approx(35.0)
        assert topo.round_trip_ms(uci, icu) == pytest.approx(150.0)
        assert topo.round_trip_ms(icu, jhu) == pytest.approx(135.0)

    def test_mixed_platforms(self):
        topo = wan_testbed()
        speeds = {m.name: m.speed for m in topo.machines}
        assert speeds["uci0"] > 1.0  # the Athlon
        assert speeds["icu0"] < 1.0  # the slower PIII

    def test_wan_bandwidth_lower_than_lan(self):
        topo = wan_testbed()
        lan_link = topo.link(topo.machine("jhu0"), topo.machine("jhu1"))
        wan_link = topo.link(topo.machine("jhu0"), topo.machine("icu0"))
        assert wan_link.bytes_per_ms < lan_link.bytes_per_ms

    def test_size_adds_transmission_delay(self):
        topo = wan_testbed()
        a, b = topo.machine("jhu0"), topo.machine("icu0")
        assert topo.one_way_ms(a, b, 10_000) > topo.one_way_ms(a, b, 0)


class TestMediumWan:
    def test_default_rtt_in_future_work_band(self):
        topo = medium_wan_testbed()
        sites = {}
        for m in topo.machines:
            sites.setdefault(m.site, m)
        machines = list(sites.values())
        rtt = topo.round_trip_ms(machines[0], machines[1])
        assert 40 <= rtt <= 100

    def test_custom_rtt(self):
        topo = medium_wan_testbed(rtt_ms=50)
        a = topo.machine("a0")
        b = topo.machine("b0")
        assert topo.round_trip_ms(a, b) == pytest.approx(50.0)

    def test_rejects_absurd_rtt(self):
        with pytest.raises(ValueError):
            medium_wan_testbed(rtt_ms=0.1)


class TestTopologyValidation:
    def test_duplicate_machine_names_rejected(self):
        machines = [Machine("m", site="s"), Machine("m", site="s")]
        with pytest.raises(ValueError):
            Topology("t", machines, site_latency_ms={})

    def test_unconfigured_site_pair_raises(self):
        machines = [Machine("a", site="s1"), Machine("b", site="s2")]
        topo = Topology("t", machines, site_latency_ms={})
        with pytest.raises(KeyError):
            topo.one_way_ms(machines[0], machines[1])

    def test_site_latency_is_symmetric(self):
        machines = [Machine("a", site="s1"), Machine("b", site="s2")]
        topo = Topology("t", machines, site_latency_ms={("s1", "s2"): 10.0})
        assert topo.one_way_ms(machines[0], machines[1]) == pytest.approx(
            topo.one_way_ms(machines[1], machines[0])
        )
