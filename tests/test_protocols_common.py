"""Cross-protocol correctness tests: every protocol must satisfy these.

The paper's security discussion (§3.2) rests on two functional invariants
we can check mechanically: all current members always agree on the key
(agreement), and the key changes on every membership event with departed
members unable to follow (key freshness / independence at the state level).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols import PROTOCOLS
from repro.protocols.loopback import LoopbackGroup, build_group

ALL = sorted(PROTOCOLS.items())


@pytest.mark.parametrize("name,cls", ALL)
class TestAgreement:
    def test_sequential_joins_agree(self, name, cls):
        loop = LoopbackGroup(cls)
        for i in range(6):
            loop.join(f"m{i}")
            loop.shared_key()  # raises on disagreement

    def test_key_changes_on_every_join(self, name, cls):
        loop = LoopbackGroup(cls)
        loop.join("m0")
        seen = {loop.shared_key()}
        for i in range(1, 6):
            loop.join(f"m{i}")
            key = loop.shared_key()
            assert key not in seen, "group key was reused after a join"
            seen.add(key)

    def test_key_changes_on_leave(self, name, cls):
        loop = build_group(cls, 5)
        old = loop.shared_key()
        loop.leave("m3")
        assert loop.shared_key() != old

    def test_departed_member_state_goes_stale(self, name, cls):
        loop = build_group(cls, 4)
        loop.leave("m1")
        new_key = loop.shared_key()
        departed = loop.departed["m1"]
        assert departed.key != new_key
        current_view = loop.protocols["m0"].view
        assert not departed.done_for(current_view)

    def test_mass_leave_partition(self, name, cls):
        loop = build_group(cls, 7)
        old = loop.shared_key()
        loop.mass_leave(["m1", "m4", "m5"])
        new = loop.shared_key()
        assert new != old
        assert loop.members() == ("m0", "m2", "m3", "m6")

    def test_partition_sides_diverge(self, name, cls):
        loop = build_group(cls, 6)
        side = loop.partition(["m1", "m2"])
        assert loop.shared_key() != side.shared_key()
        assert side.members() == ("m1", "m2")

    def test_merge_after_partition(self, name, cls):
        loop = build_group(cls, 6)
        before = loop.shared_key()
        side = loop.partition(["m4", "m5"])
        loop.merge(side)
        after = loop.shared_key()
        assert after != before
        assert loop.members() == tuple(f"m{i}" for i in range(6))

    def test_merge_of_larger_minority(self, name, cls):
        loop = build_group(cls, 5)
        side = loop.partition(["m0", "m1"])  # minority holds the oldest
        loop.merge(side)
        loop.shared_key()

    def test_mass_join(self, name, cls):
        loop = build_group(cls, 3)
        loop.mass_join(["x0", "x1", "x2"])
        loop.shared_key()
        assert len(loop.members()) == 6

    def test_group_formation_from_scratch_via_mass_join(self, name, cls):
        loop = LoopbackGroup(cls)
        loop.mass_join([f"m{i}" for i in range(5)])
        loop.shared_key()

    def test_shrink_to_one_and_regrow(self, name, cls):
        loop = build_group(cls, 3)
        loop.leave("m1")
        loop.leave("m2")
        assert loop.members() == ("m0",)
        solo_key = loop.shared_key()
        loop.join("m9")
        assert loop.shared_key() != solo_key

    def test_rejoin_after_leave(self, name, cls):
        loop = build_group(cls, 4)
        loop.leave("m2")
        key_without = loop.shared_key()
        loop.join("m2")
        assert loop.shared_key() != key_without
        assert "m2" in loop.members()

    def test_two_member_group_leave(self, name, cls):
        loop = build_group(cls, 2)
        loop.leave("m0")
        assert loop.members() == ("m1",)
        assert loop.shared_key() is not None

    def test_stale_messages_ignored(self, name, cls):
        from repro.protocols.base import ProtocolMessage

        loop = build_group(cls, 3)
        proto = loop.protocols["m0"]
        stale = ProtocolMessage(
            protocol=name,
            epoch=(99, 99),
            step="bogus-step",
            sender="m1",
            body={},
        )
        assert proto.receive(stale) == []


@pytest.mark.parametrize("name,cls", ALL)
class TestCounts:
    def test_ledgers_charge_work(self, name, cls):
        loop = build_group(cls, 4)
        stats = loop.join("x")
        assert stats.exponentiations() > 0

    def test_leave_is_single_round_except_bd(self, name, cls):
        loop = build_group(cls, 6)
        stats = loop.leave("m2")
        if name == "BD":
            assert stats.rounds == 2
        else:
            assert stats.rounds == 1
            assert stats.total_messages == 1

    def test_join_round_counts_match_table1(self, name, cls):
        loop = build_group(cls, 6)
        stats = loop.join("x")
        expected_rounds = {"GDH": 4, "CKD": 3, "BD": 2, "TGDH": 2, "STR": 2}
        assert stats.rounds == expected_rounds[name]


@st.composite
def _event_scripts(draw):
    """A random sequence of join/leave/partition-merge operations."""
    return draw(
        st.lists(
            st.sampled_from(["join", "leave", "mass_leave", "split_merge"]),
            min_size=1,
            max_size=8,
        )
    )


@pytest.mark.parametrize("name,cls", ALL)
@given(script=_event_scripts(), data=st.data())
@settings(max_examples=12, deadline=None)
def test_random_event_sequences_preserve_agreement(name, cls, script, data):
    """Property: after ANY sequence of membership events, all current
    members compute the same key, and it differs from the previous one."""
    loop = build_group(cls, 3)
    counter = [3]
    previous = loop.shared_key()
    for op in script:
        members = list(loop.members())
        if op == "join" or len(members) <= 2:
            loop.join(f"m{counter[0]}")
            counter[0] += 1
        elif op == "leave":
            victim = data.draw(st.sampled_from(members), label="leaver")
            loop.leave(victim)
        elif op == "mass_leave":
            count = data.draw(
                st.integers(1, len(members) - 1), label="leavers"
            )
            loop.mass_leave(members[-count:])
        else:  # split_merge
            count = data.draw(st.integers(1, len(members) - 1), label="split")
            chosen = data.draw(
                st.permutations(members), label="which"
            )[:count]
            side = loop.partition(list(chosen))
            side.shared_key()
            loop.merge(side)
        key = loop.shared_key()
        assert key != previous, f"{name} reused a key across {op}"
        previous = key


class TestLoopbackValidation:
    def test_double_join_rejected(self):
        loop = build_group(PROTOCOLS["BD"], 3)
        with pytest.raises(ValueError):
            loop.join("m0")

    def test_leave_of_stranger_rejected(self):
        loop = build_group(PROTOCOLS["BD"], 3)
        with pytest.raises(ValueError):
            loop.leave("ghost")

    def test_partition_needs_actual_members(self):
        loop = build_group(PROTOCOLS["BD"], 3)
        with pytest.raises(ValueError):
            loop.partition(["ghost"])

    def test_partition_cannot_take_everyone(self):
        loop = build_group(PROTOCOLS["BD"], 3)
        with pytest.raises(ValueError):
            loop.partition(["m0", "m1", "m2"])

    def test_merge_requires_same_protocol(self):
        a = build_group(PROTOCOLS["BD"], 3)
        b = build_group(PROTOCOLS["STR"], 2, prefix="s")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_shared_key_raises_on_divergence(self):
        loop = build_group(PROTOCOLS["BD"], 3)
        loop.protocols["m0"].key = 12345  # corrupt one member
        with pytest.raises(AssertionError):
            loop.shared_key()
