"""Tests for message and view datatypes."""

import pytest

from repro.gcs.messages import GroupMessage, Service, View, ViewEvent


class TestView:
    def _view(self, members=("a", "b", "c")):
        return View(
            view_id=((1, 0), 4),
            group="g",
            members=tuple(members),
            event=ViewEvent.JOIN,
            joined=("c",),
        )

    def test_oldest_and_newest(self):
        view = self._view()
        assert view.oldest == "a"
        assert view.newest == "c"

    def test_contains(self):
        view = self._view()
        assert "b" in view
        assert "z" not in view

    def test_views_are_immutable(self):
        view = self._view()
        with pytest.raises(AttributeError):
            view.members = ("x",)


class TestGroupMessage:
    def test_message_ids_are_unique(self):
        a = GroupMessage(group="g", sender="s", payload=None)
        b = GroupMessage(group="g", sender="s", payload=None)
        assert a.msg_id != b.msg_id

    def test_default_service_is_agreed(self):
        message = GroupMessage(group="g", sender="s", payload=None)
        assert message.service is Service.AGREED

    def test_kinds(self):
        for kind in ("data", "join", "leave", "disconnect"):
            message = GroupMessage(group="g", sender="s", payload=None, kind=kind)
            assert message.kind == kind
