"""Symbolic-vs-real cross-check (the engine abstraction's core guarantee).

The symbolic engine must be *indistinguishable in cost* from the real
one: every protocol run charges the identical operation ledger, so every
simulated time is identical.  And in both engines all members must agree
on the group key after every membership event — the symbolic dlog
representation preserves the algebra, not just the costs.
"""

import pytest

from repro.bench.harness import measure_event
from repro.gcs.topology import lan_testbed
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import LoopbackGroup

ALL_PROTOCOLS = sorted(PROTOCOLS)


def _churn(protocol, engine):
    """Joins to n=8, a leave, a partition and a merge; returns per-event
    (op_counts, rounds) plus the final group for key checks."""
    loop = LoopbackGroup(PROTOCOLS[protocol], engine=engine)
    trail = []
    for i in range(8):
        stats = loop.join(f"m{i}")
        trail.append((stats.op_counts, stats.rounds))
    stats = loop.leave("m3")
    trail.append((stats.op_counts, stats.rounds))
    other = loop.partition(["m5", "m6"])
    trail.append((loop.last_stats.op_counts, loop.last_stats.rounds))
    trail.append((other.last_stats.op_counts, other.last_stats.rounds))
    stats = loop.merge(other)
    trail.append((stats.op_counts, stats.rounds))
    return trail, loop


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_ledgers_identical_and_keys_agree_across_churn(protocol):
    real_trail, real_loop = _churn(protocol, "real")
    symbolic_trail, symbolic_loop = _churn(protocol, "symbolic")
    assert len(real_trail) == len(symbolic_trail)
    for (real_counts, real_rounds), (sym_counts, sym_rounds) in zip(
        real_trail, symbolic_trail
    ):
        assert real_rounds == sym_rounds
        assert real_counts == sym_counts
    # Key agreement in both engines (shared_key asserts all members match).
    assert real_loop.shared_key() is not None
    assert symbolic_loop.shared_key() is not None
    assert real_loop.members() == symbolic_loop.members()


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_full_stack_times_identical(protocol):
    """End-to-end on the simulated testbed: join and leave at n ≤ 8 produce
    bit-identical total and membership times under both engines."""
    results = {}
    for engine in ("real", "symbolic"):
        join = measure_event(
            lan_testbed, protocol, 5, "join", repeats=1, engine=engine
        )
        leave = measure_event(
            lan_testbed, protocol, 5, "leave", repeats=1, engine=engine
        )
        results[engine] = (
            join.total_ms,
            join.membership_ms,
            leave.total_ms,
            leave.membership_ms,
        )
        assert join.engine == engine
    assert results["real"] == results["symbolic"]
