"""Property-based tests over the full group communication stack.

Hypothesis drives random sequences of joins, leaves, sends, partitions
and heals, and the invariants of DESIGN.md §5 are checked after every
quiescent point: total order, view agreement, and no message invented or
duplicated.
"""

from hypothesis import given, settings, strategies as st

from repro.gcs import GcsWorld, lan_testbed


@st.composite
def _scripts(draw):
    return draw(
        st.lists(
            st.sampled_from(["join", "leave", "send", "split", "heal"]),
            min_size=3,
            max_size=12,
        )
    )


@given(script=_scripts(), data=st.data())
@settings(max_examples=20, deadline=None)
def test_total_order_and_views_hold_under_random_churn(script, data):
    world = GcsWorld(lan_testbed())
    clients = {}
    counter = [0]
    partitioned = [False]

    # Start with three members.
    for _ in range(3):
        name = f"m{counter[0]}"
        counter[0] += 1
        client = world.channel(name, counter[0] % 13)
        client.join("g")
        clients[name] = client
    world.run_until_idle()

    sent = []
    for op in script:
        members = [c for c in clients.values() if c.connected]
        if op == "join" or len(members) < 2:
            name = f"m{counter[0]}"
            counter[0] += 1
            client = world.channel(name, counter[0] % 13)
            client.join("g")
            clients[name] = client
        elif op == "leave":
            victim = data.draw(
                st.sampled_from(sorted(members, key=lambda c: c.name)),
                label="leaver",
            )
            victim.leave("g")
        elif op == "send":
            sender = data.draw(
                st.sampled_from(sorted(members, key=lambda c: c.name)),
                label="sender",
            )
            payload = f"msg-{len(sent)}"
            sent.append(payload)
            sender.multicast("g", payload)
        elif op == "split" and not partitioned[0]:
            cut = data.draw(st.integers(1, 6), label="cut")
            world.partition(
                [list(range(cut)), list(range(cut, 13))]
            )
            partitioned[0] = True
        elif op == "heal" and partitioned[0]:
            world.heal()
            partitioned[0] = False
        world.run_until_idle()
    if partitioned[0]:
        world.heal()
        world.run_until_idle()

    # Invariant 1: within the final view, members that share membership
    # agree on the order of the messages both delivered.
    live = [c for c in clients.values() if c.connected]
    for a in live:
        for b in live:
            pa = [m.payload for m in a.received]
            pb = [m.payload for m in b.received]
            common = [p for p in pa if p in pb]
            assert common == [p for p in pb if p in pa], (
                f"{a.name} and {b.name} disagree on common order"
            )
    # Invariant 2: nobody delivered a message that was never sent, and
    # nobody delivered anything twice.
    for c in clients.values():
        payloads = [m.payload for m in c.received]
        assert len(payloads) == len(set(payloads)), f"{c.name} duplicated"
        assert set(payloads) <= set(sent)
    # Invariant 3: all currently-connected members that are in the group
    # share the final view.
    final_views = {}
    for c in live:
        if c.views and c.name in c.views[-1].members:
            final_views[c.name] = c.views[-1].members
    for name, members in final_views.items():
        for other in members:
            if other in final_views:
                assert final_views[other] == members, (
                    f"{name} and {other} ended in different views"
                )
