"""Tests for group-data encryption under the group key."""

import pytest

from repro.core.encryption import GroupCipher, IntegrityError, SealedMessage


@pytest.fixture()
def cipher():
    return GroupCipher(group_key=123456789, epoch=(1, 7))


def test_seal_open_roundtrip(cipher):
    sealed = cipher.seal("alice", b"attack at dawn")
    assert cipher.open(sealed) == b"attack at dawn"


def test_ciphertext_differs_from_plaintext(cipher):
    sealed = cipher.seal("alice", b"attack at dawn")
    assert sealed.ciphertext != b"attack at dawn"


def test_nonces_never_repeat(cipher):
    nonces = {cipher.seal("alice", b"x").nonce for _ in range(50)}
    assert len(nonces) == 50


def test_tampered_ciphertext_rejected(cipher):
    sealed = cipher.seal("alice", b"attack at dawn")
    tampered = SealedMessage(
        epoch=sealed.epoch,
        sender=sealed.sender,
        nonce=sealed.nonce,
        ciphertext=bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:],
        mac=sealed.mac,
    )
    with pytest.raises(IntegrityError):
        cipher.open(tampered)


def test_tampered_mac_rejected(cipher):
    sealed = cipher.seal("alice", b"attack at dawn")
    tampered = SealedMessage(
        epoch=sealed.epoch,
        sender=sealed.sender,
        nonce=sealed.nonce,
        ciphertext=sealed.ciphertext,
        mac=bytes(32),
    )
    with pytest.raises(IntegrityError):
        cipher.open(tampered)


def test_different_epochs_use_different_keys():
    a = GroupCipher(111, (1, 1))
    b = GroupCipher(111, (1, 2))
    sealed = a.seal("alice", b"msg")
    with pytest.raises(IntegrityError):
        b.open(sealed)


def test_different_group_keys_incompatible():
    a = GroupCipher(111, (1, 1))
    b = GroupCipher(222, (1, 1))
    sealed = a.seal("alice", b"msg")
    with pytest.raises(IntegrityError):
        b.open(sealed)


def test_empty_payload(cipher):
    sealed = cipher.seal("alice", b"")
    assert cipher.open(sealed) == b""


def test_size_accounting(cipher):
    sealed = cipher.seal("alice", b"x" * 100)
    assert sealed.size_bytes >= 100
