"""Critical-path extraction: the causal chain behind every rekey.

The acceptance bar from the issue: for every epoch of a full
five-protocol join/leave sweep, the critical-path segment durations sum
*float-exactly* (``==``, not approximately) to the epoch's measured
total elapsed time, the chain is fully traced (no dropped ancestors),
and the path survives fault injection.
"""

import pytest

from repro.core import SecureSpreadFramework
from repro.faults import LinkFaults
from repro.gcs.topology import lan_testbed
from repro.obs import (
    critical_path,
    render_critical_paths,
    timeline_critical_paths,
)
from repro.protocols import PROTOCOLS

EVENTS = ("join", "leave")


def _framework(protocol, observe=True, **kwargs):
    options = dict(dh_group="dh-test", observe=observe)
    options.update(kwargs)
    return SecureSpreadFramework(
        lan_testbed(), default_protocol=protocol, **options
    )


def _settled_group(framework, count):
    members = []
    machines = len(framework.world.topology.machines)
    for index in range(count):
        member = framework.member(f"m{index}", index % machines)
        member.join()
        framework.run_until_idle()
        members.append(member)
    return members


def _run_event(framework, members, event):
    if event == "join":
        joiner = framework.member("x1", 1)
        framework.mark_event()
        joiner.join()
    else:
        framework.mark_event()
        members[len(members) // 2].leave()
    framework.run_until_idle()


@pytest.mark.parametrize("event", EVENTS)
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_sum_is_float_exact_for_every_protocol_and_event(protocol, event):
    framework = _framework(protocol)
    members = _settled_group(framework, 4)
    _run_event(framework, members, event)
    paths = timeline_critical_paths(framework.timeline, framework.obs.spans)
    assert paths, "the measured event must yield at least one epoch"
    for path in paths:
        assert path.exact
        assert not path.truncated
        assert path.plain_sum() == path.total  # ==, not approx
        assert all(s.duration >= 0.0 for s in path.segments)


@pytest.mark.parametrize("event", EVENTS)
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_chain_is_recorded_not_inferred(protocol, event):
    """Every epoch's chain carries real traced spans, not the untraced
    fallback, and ends in causally linked work at the critical member."""
    framework = _framework(protocol)
    members = _settled_group(framework, 4)
    _run_event(framework, members, event)
    for path in timeline_critical_paths(
        framework.timeline, framework.obs.spans
    ):
        assert path.trace_id is not None
        traced = [s for s in path.segments if not s.is_wait]
        assert traced, "chain must contain at least one traced span"
        assert all(s.span_id is not None for s in traced)
        assert {"untraced"} != {s.name for s in path.segments}


@pytest.mark.parametrize("protocol", ("BD", "TGDH"))
def test_exactness_survives_link_faults(protocol):
    framework = _framework(protocol, stall_timeout_ms=400.0)
    members = _settled_group(framework, 4)
    framework.world.install_link_faults(
        LinkFaults.uniform(seed=11, drop=0.12, duplicate=0.2)
    )
    _run_event(framework, members, "join")
    paths = timeline_critical_paths(framework.timeline, framework.obs.spans)
    assert paths
    for path in paths:
        assert path.exact
        assert path.plain_sum() == path.total


def test_untraced_epoch_falls_back_to_single_wait_segment():
    framework = _framework("GDH", observe=False)
    members = _settled_group(framework, 3)
    _run_event(framework, members, "leave")
    record = framework.timeline.latest_complete()
    path = critical_path(record, framework.obs.spans)
    assert path.exact and not path.truncated
    assert [s.name for s in path.segments] == ["untraced"]
    assert path.plain_sum() == path.total


def test_critical_member_matches_last_key_install():
    framework = _framework("STR")
    members = _settled_group(framework, 4)
    _run_event(framework, members, "join")
    record = framework.timeline.latest_complete()
    path = critical_path(record, framework.obs.spans)
    last = max(record.key_ready.items(), key=lambda kv: (kv[1], kv[0]))[0]
    assert path.member == last


def test_segments_partition_the_measured_window():
    """The tiles are contiguous and cover event start -> last key ready."""
    framework = _framework("CKD")
    members = _settled_group(framework, 4)
    _run_event(framework, members, "join")
    record = framework.timeline.latest_complete()
    path = critical_path(record, framework.obs.spans)
    window_start = record.event_started_at
    window_end = record.key_ready[path.member]
    assert path.segments[0].start == pytest.approx(window_start)
    assert path.segments[-1].end == pytest.approx(window_end)
    for before, after in zip(path.segments, path.segments[1:]):
        assert after.start == pytest.approx(before.end)


def test_render_shows_exact_chains_and_phases():
    framework = _framework("TGDH")
    members = _settled_group(framework, 4)
    _run_event(framework, members, "join")
    paths = timeline_critical_paths(framework.timeline, framework.obs.spans)
    text = render_critical_paths(paths)
    assert "critical member" in text
    assert "exact" in text and "INEXACT" not in text
    assert "truncated" not in text
    assert "sum" in text and "segments)" in text


def test_render_empty_timeline():
    assert "No complete rekey epochs" in render_critical_paths([])


def test_rejects_unstarted_epoch():
    framework = _framework("BD")
    _settled_group(framework, 2)  # growth epochs are never event-marked
    record = next(iter(framework.timeline.epochs.values()))
    assert record.event_started_at is None
    with pytest.raises(ValueError):
        critical_path(record, framework.obs.spans)
