"""GDH (IKA.3) specifics: key structure, roles, costs."""

from repro.crypto.groups import GROUP_TEST
from repro.protocols import GdhProtocol
from repro.protocols.loopback import build_group


def _product_of_contributions(loop):
    product = 1
    q = GROUP_TEST.q
    for proto in loop.protocols.values():
        product = (product * proto._r) % q
    return product


def test_key_is_g_to_the_product_of_contributions():
    """The defining GDH property: K = g^(r_1 r_2 ... r_n)."""
    loop = build_group(GdhProtocol, 6)
    expected = pow(GROUP_TEST.g, _product_of_contributions(loop), GROUP_TEST.p)
    assert loop.shared_key() == expected


def test_key_after_leave_refreshes_controller_contribution():
    """IKA.3 leave: the controller swaps its own contribution for a fresh
    one but the departed member's old exponent remains a factor (the
    departed member still cannot compute the key: its partial key was
    removed from the broadcast list)."""
    loop = build_group(GdhProtocol, 5)
    loop.leave("m2")
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    exponent = _product_of_contributions(loop)
    exponent = (exponent * loop.departed["m2"]._r) % q
    assert loop.shared_key() == pow(g, exponent, p)
    # ... and the departed member's partial key is gone from the list.
    controller = loop.protocols["m4"]
    assert "m2" not in controller._partials


def test_join_message_count_is_n_plus_3():
    """Table 1: GDH join = 4 rounds, n+3 messages (n = old group size)."""
    for n in (2, 5, 9):
        loop = build_group(GdhProtocol, n)
        stats = loop.join("x")
        assert stats.rounds == 4
        assert stats.total_messages == n + 3


def test_merge_rounds_scale_with_new_members():
    """Table 1: GDH merge = m+3 rounds, n+2m+1 messages."""
    for m in (2, 4):
        loop = build_group(GdhProtocol, 4)
        stats = loop.mass_join([f"x{i}" for i in range(m)])
        assert stats.rounds == m + 3
        assert stats.total_messages == 4 + 2 * m + 1


def test_leave_is_one_broadcast():
    loop = build_group(GdhProtocol, 8)
    stats = loop.leave("m5")
    assert stats.rounds == 1
    assert stats.total_messages == 1
    (message,) = stats.messages
    assert message.broadcast


def test_leave_broadcast_comes_from_newest_member():
    """The controller is, at all times, the most recent remaining member."""
    loop = build_group(GdhProtocol, 5)
    stats = loop.leave("m1")
    assert stats.messages[0].sender == "m4"


def test_controller_leave_promotes_previous_member():
    loop = build_group(GdhProtocol, 5)
    stats = loop.leave("m4")  # the controller itself leaves
    assert stats.messages[0].sender == "m3"
    loop.shared_key()


def test_leave_controller_exponentiations_linear():
    """Controller refreshes every remaining partial key: n-p exps."""
    loop = build_group(GdhProtocol, 10)
    stats = loop.leave("m0")
    controller = stats.messages[0].sender
    # n' - 1 partial key refreshes + 1 key computation
    assert stats.exponentiations(controller) == len(stats.members)


def test_factor_out_messages_are_agreed_targeted():
    """§6.2.2: factor-out unicasts must be Agreed-ordered broadcasts."""
    loop = build_group(GdhProtocol, 4)
    stats = loop.join("x")
    factors = [m for m in stats.messages if m.step == "gdh-factor"]
    assert len(factors) == 4
    assert all(m.requires_agreed for m in factors)
    assert all(m.target == "x" for m in factors)


def test_token_messages_are_fifo_unicasts():
    loop = build_group(GdhProtocol, 4)
    stats = loop.mass_join(["x0", "x1"])
    tokens = [m for m in stats.messages if m.step == "gdh-token"]
    assert len(tokens) == 2  # controller -> x0 -> x1
    assert all(not m.requires_agreed and not m.broadcast for m in tokens)


def test_all_members_cache_partial_keys():
    loop = build_group(GdhProtocol, 4)
    for proto in loop.protocols.values():
        assert set(proto._partials) == set(loop.members())


def test_new_controller_is_last_new_member():
    loop = build_group(GdhProtocol, 3)
    stats = loop.mass_join(["x0", "x1"])
    keylist = [m for m in stats.messages if m.step == "gdh-keylist"]
    assert len(keylist) == 1
    assert keylist[0].sender == "x1"


def test_partial_keys_exclude_own_contribution():
    """P_i = g^(prod of everyone's r except member i's)."""
    loop = build_group(GdhProtocol, 5)
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    total = _product_of_contributions(loop)
    for name, proto in loop.protocols.items():
        expected = pow(g, (total * pow(proto._r, -1, q)) % q, p)
        assert proto._partials[name] == expected
