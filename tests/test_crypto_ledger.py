"""Tests for operation accounting (OperationLedger / OpCounts)."""

from hypothesis import given, strategies as st

from repro.crypto.ledger import OpCounts, OperationLedger


def test_snapshot_counts_exponentiations_by_modulus():
    ledger = OperationLedger()
    ledger.record_exponentiation(512)
    ledger.record_exponentiation(512, 2)
    ledger.record_exponentiation(1024)
    snap = ledger.snapshot()
    assert snap.exp_count(512) == 3
    assert snap.exp_count(1024) == 1
    assert snap.exp_count() == 4


def test_small_exponentiation_multiplication_count():
    ledger = OperationLedger()
    # e=5 = 0b101: 2 squarings + 1 multiply = 3 mults.
    ledger.record_small_exponentiation(512, 5)
    assert ledger.snapshot().small_mult_count(512) == 3
    # e=1 and e=0 cost nothing.
    ledger.record_small_exponentiation(512, 1)
    ledger.record_small_exponentiation(512, 0)
    assert ledger.snapshot().small_mult_count(512) == 3


def test_signature_and_verification_counts():
    ledger = OperationLedger()
    ledger.record_signature()
    ledger.record_verification(3)
    snap = ledger.snapshot()
    assert snap.signatures == 1
    assert snap.verifications == 3


def test_delta_since():
    ledger = OperationLedger()
    ledger.record_exponentiation(512)
    before = ledger.snapshot()
    ledger.record_exponentiation(512, 4)
    ledger.record_signature()
    delta = ledger.delta_since(before)
    assert delta.exp_count(512) == 4
    assert delta.signatures == 1


def test_delta_of_no_work_is_zero():
    ledger = OperationLedger()
    ledger.record_exponentiation(1024, 7)
    before = ledger.snapshot()
    assert ledger.delta_since(before).is_zero()


def test_reset():
    ledger = OperationLedger()
    ledger.record_exponentiation(512)
    ledger.record_multiplication(512)
    ledger.reset()
    assert ledger.snapshot().is_zero()


def test_opcounts_addition_and_subtraction_roundtrip():
    a = OpCounts(exponentiations=((512, 3),), signatures=2)
    b = OpCounts(exponentiations=((512, 1), (1024, 2)), verifications=5)
    total = a + b
    assert total.exp_count(512) == 4
    assert total.exp_count(1024) == 2
    assert (total - b).exp_count(512) == 3
    assert (total - b - a).is_zero()


@given(
    st.lists(
        st.tuples(st.sampled_from([512, 1024]), st.integers(1, 20)), max_size=10
    )
)
def test_snapshot_matches_recorded_sum(records):
    ledger = OperationLedger()
    for bits, count in records:
        ledger.record_exponentiation(bits, count)
    expected = sum(count for _, count in records)
    assert ledger.snapshot().exp_count() == expected


def test_mult_count_tracks_plain_multiplications():
    ledger = OperationLedger()
    ledger.record_multiplication(512, 7)
    ledger.record_multiplication(160, 2)
    snap = ledger.snapshot()
    assert snap.mult_count(512) == 7
    assert snap.mult_count(160) == 2
    assert snap.mult_count() == 9
