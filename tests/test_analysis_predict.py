"""Tests for the analytic time predictor and its simulator sanity-check."""


from repro.analysis.predict import predict_elapsed_ms
from repro.bench.harness import measure_event
from repro.crypto.costmodel import pentium3_666
from repro.gcs.messages import ViewEvent
from repro.gcs.topology import lan_testbed, wan_testbed


def test_wan_predictions_track_round_counts():
    model = pentium3_666()
    topo = wan_testbed()
    gdh = predict_elapsed_ms("GDH", ViewEvent.JOIN, 10, topo, model)
    ckd = predict_elapsed_ms("CKD", ViewEvent.JOIN, 10, topo, model)
    str_ = predict_elapsed_ms("STR", ViewEvent.JOIN, 10, topo, model)
    # 4 rounds > 3 rounds > 2 rounds on a high-latency ring.
    assert gdh > ckd > str_


def test_lan_predictions_track_computation():
    model = pentium3_666()
    topo = lan_testbed()
    gdh = predict_elapsed_ms("GDH", ViewEvent.JOIN, 40, topo, model)
    str_ = predict_elapsed_ms("STR", ViewEvent.JOIN, 40, topo, model)
    assert gdh > 2 * str_  # linear vs constant exponentiation counts


def test_prediction_within_factor_of_simulation():
    """The coarse predictor lands within a small factor of the simulator
    (it ignores contention and token phase, so exact match is not
    expected)."""
    model = pentium3_666()
    for protocol in ("GDH", "STR", "CKD"):
        predicted = predict_elapsed_ms(
            protocol, ViewEvent.JOIN, 10, lan_testbed(), model
        )
        simulated = measure_event(
            lan_testbed, protocol, 10, "join", dh_group="dh-512", repeats=1
        ).total_ms
        assert predicted / 4 < simulated < predicted * 4, protocol


def test_modulus_scaling():
    model = pentium3_666()
    topo = lan_testbed()
    small = predict_elapsed_ms("GDH", ViewEvent.JOIN, 30, topo, model, 512)
    big = predict_elapsed_ms("GDH", ViewEvent.JOIN, 30, topo, model, 1024)
    assert big > 1.5 * small
