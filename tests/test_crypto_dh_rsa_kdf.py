"""Tests for Diffie-Hellman, RSA signatures and the symmetric layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import DiffieHellman
from repro.crypto.groups import GROUP_512, GROUP_TEST, GROUP_TINY
from repro.crypto.kdf import derive_key, hmac_sha256, stream_xor
from repro.crypto.modmath import GroupElementContext
from repro.crypto.rng import DeterministicRandom
from repro.crypto.rsa import (
    RsaSigner,
    RsaVerifier,
    cached_rsa_keypair,
    generate_rsa_keypair,
)


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        ctx = GroupElementContext(GROUP_TEST)
        alice = DiffieHellman(ctx, DeterministicRandom(1))
        bob = DiffieHellman(ctx, DeterministicRandom(2))
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_real_sized_group(self):
        ctx = GroupElementContext(GROUP_512)
        alice = DiffieHellman(ctx, DeterministicRandom(1))
        bob = DiffieHellman(ctx, DeterministicRandom(2))
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_rejects_out_of_group_public(self):
        ctx = GroupElementContext(GROUP_TINY)
        alice = DiffieHellman(ctx, DeterministicRandom(1))
        with pytest.raises(ValueError):
            alice.shared_secret(2)  # order-1018 element, not in the subgroup

    def test_refresh_changes_share(self):
        ctx = GroupElementContext(GROUP_TEST)
        alice = DiffieHellman(ctx, DeterministicRandom(1))
        old_public = alice.public
        alice.refresh(DeterministicRandom(99))
        assert alice.public != old_public

    def test_exchange_charges_ledger(self):
        ctx = GroupElementContext(GROUP_TEST)
        alice = DiffieHellman(ctx, DeterministicRandom(1))
        bob = DiffieHellman(ctx, DeterministicRandom(2))
        before = ctx.ledger.snapshot()
        alice.shared_secret(bob.public)
        assert ctx.ledger.delta_since(before).exp_count() == 1


class TestRsa:
    def test_sign_verify_roundtrip(self):
        kp = cached_rsa_keypair(512, 0)
        signer = RsaSigner(kp)
        verifier = RsaVerifier()
        sig = signer.sign(b"attack at dawn")
        assert verifier.verify(kp.public, b"attack at dawn", sig)

    def test_tampered_message_rejected(self):
        kp = cached_rsa_keypair(512, 0)
        sig = RsaSigner(kp).sign(b"attack at dawn")
        assert not RsaVerifier().verify(kp.public, b"attack at dusk", sig)

    def test_wrong_key_rejected(self):
        kp1 = cached_rsa_keypair(512, 0)
        kp2 = cached_rsa_keypair(512, 1)
        sig = RsaSigner(kp1).sign(b"msg")
        assert not RsaVerifier().verify(kp2.public, b"msg", sig)

    def test_out_of_range_signature_rejected(self):
        kp = cached_rsa_keypair(512, 0)
        verifier = RsaVerifier()
        assert not verifier.verify(kp.public, b"msg", 0)
        assert not verifier.verify(kp.public, b"msg", kp.n + 5)

    def test_public_exponent_is_three(self):
        # The paper signs with e=3 to keep verification cheap (§6.1.1).
        assert cached_rsa_keypair(512, 0).e == 3

    def test_keygen_produces_requested_size(self):
        kp = generate_rsa_keypair(128, DeterministicRandom(3))
        assert kp.n.bit_length() == 128
        assert (kp.d * kp.e) % ((kp.p - 1) * (kp.q - 1)) == 1

    def test_keygen_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(8, DeterministicRandom(0))

    def test_cached_keypair_is_memoized_and_deterministic(self):
        assert cached_rsa_keypair(256, 7) is cached_rsa_keypair(256, 7)
        assert cached_rsa_keypair(256, 7).n != cached_rsa_keypair(256, 8).n

    def test_ledger_charges(self):
        kp = cached_rsa_keypair(512, 0)
        signer = RsaSigner(kp)
        verifier = RsaVerifier()
        sig = signer.sign(b"m")
        verifier.verify(kp.public, b"m", sig)
        verifier.verify(kp.public, b"m", sig)
        assert signer.ledger.snapshot().signatures == 1
        assert verifier.ledger.snapshot().verifications == 2

    @given(st.binary(max_size=64))
    @settings(max_examples=25)
    def test_roundtrip_arbitrary_messages(self, message):
        kp = cached_rsa_keypair(256, 2)
        sig = RsaSigner(kp).sign(message)
        assert RsaVerifier().verify(kp.public, message, sig)


class TestKdf:
    def test_derive_key_length_and_determinism(self):
        assert len(derive_key(42, "label", 48)) == 48
        assert derive_key(42, "label") == derive_key(42, "label")

    def test_derive_key_sensitivity(self):
        assert derive_key(42, "a") != derive_key(42, "b")
        assert derive_key(42, "a") != derive_key(43, "a")

    def test_derive_key_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            derive_key(42, "label", 0)

    def test_hmac_known_property(self):
        assert hmac_sha256(b"k", b"m") != hmac_sha256(b"k", b"n")
        assert len(hmac_sha256(b"k", b"m")) == 32

    @given(st.binary(max_size=200), st.binary(min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_stream_xor_roundtrip(self, data, nonce):
        key = derive_key(7, "stream")
        assert stream_xor(key, nonce, stream_xor(key, nonce, data)) == data

    def test_stream_xor_differs_by_nonce(self):
        key = derive_key(7, "stream")
        data = b"x" * 32
        assert stream_xor(key, b"n1", data) != stream_xor(key, b"n2", data)


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(5)
        b = DeterministicRandom(5)
        assert [a.randint_bits(32) for _ in range(5)] == [
            b.randint_bits(32) for _ in range(5)
        ]

    def test_fork_is_independent_of_draw_order(self):
        root = DeterministicRandom(5)
        fork_a = root.fork("alice")
        root.randint_bits(64)  # extra draw must not perturb forks
        fork_a2 = DeterministicRandom(5).fork("alice")
        assert fork_a.randint_bits(32) == fork_a2.randint_bits(32)

    def test_randint_bits_msb_set(self):
        rng = DeterministicRandom(1)
        for _ in range(50):
            assert rng.randint_bits(16).bit_length() == 16

    def test_randint_bits_rejects_zero(self):
        with pytest.raises(ValueError):
            DeterministicRandom(0).randint_bits(0)


class TestDeterministicRandomExtras:
    def test_choice_and_uniform_are_deterministic(self):
        a, b = DeterministicRandom(11), DeterministicRandom(11)
        items = ["x", "y", "z"]
        assert [a.choice(items) for _ in range(5)] == [
            b.choice(items) for _ in range(5)
        ]
        assert a.uniform(0, 10) == b.uniform(0, 10)

    def test_shuffle_in_place_and_deterministic(self):
        a_items, b_items = list(range(10)), list(range(10))
        DeterministicRandom(3).shuffle(a_items)
        DeterministicRandom(3).shuffle(b_items)
        assert a_items == b_items
        assert sorted(a_items) == list(range(10))

    def test_random_bytes_length(self):
        assert len(DeterministicRandom(1).random_bytes(17)) == 17
