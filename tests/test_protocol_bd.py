"""Burmester-Desmedt specifics: key equation, symmetry, hidden cost."""


from repro.crypto.groups import GROUP_TEST
from repro.protocols import BdProtocol
from repro.protocols.loopback import build_group


def test_key_equation():
    """K = g^(r1 r2 + r2 r3 + ... + rn r1)  (Figure 10)."""
    loop = build_group(BdProtocol, 5)
    members = loop.members()
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    rs = [loop.protocols[m]._r for m in members]
    exponent = sum(
        rs[i] * rs[(i + 1) % len(rs)] for i in range(len(rs))
    ) % q
    assert loop.shared_key() == pow(g, exponent, p)


def test_two_member_group_key_is_plain_dh():
    """With n=2 the BD key degenerates to g^(2 r1 r2)."""
    loop = build_group(BdProtocol, 2)
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    r = [proto._r for proto in loop.protocols.values()]
    assert loop.shared_key() == pow(g, (2 * r[0] * r[1]) % q, p)


def test_every_event_runs_identical_protocol():
    """BD has no special cases: join, leave and partition all cost
    2 rounds and 2n broadcasts."""
    loop = build_group(BdProtocol, 6)
    for stats in (
        loop.join("x"),
        loop.leave("m2"),
        loop.mass_leave(["m3", "m4"]),
    ):
        n = len(stats.members)
        assert stats.rounds == 2
        assert stats.total_messages == 2 * n
        assert stats.broadcasts == 2 * n


def test_exactly_three_full_exponentiations_per_member():
    loop = build_group(BdProtocol, 8)
    stats = loop.join("x")
    for member, counts in stats.op_counts.items():
        assert counts.exp_count() == 3, member


def test_hidden_cost_grows_with_group_size():
    """§5: the 'hidden' small-exponent multiplications scale ~n log n."""
    small = build_group(BdProtocol, 4).join("x")
    big = build_group(BdProtocol, 16, prefix="b").join("y")
    small_mults = max(c.small_mult_count() for c in small.op_counts.values())
    big_mults = max(c.small_mult_count() for c in big.op_counts.values())
    assert big_mults > 3 * small_mults


def test_no_member_has_special_duties():
    """All members send exactly 2 broadcasts — no controller, no sponsor."""
    loop = build_group(BdProtocol, 5)
    stats = loop.join("x")
    senders = [m.sender for m in stats.messages]
    for member in stats.members:
        assert senders.count(member) == 2


def test_message_sizes_are_single_element():
    loop = build_group(BdProtocol, 4)
    stats = loop.join("x")
    assert all(m.element_count == 1 for m in stats.messages)
