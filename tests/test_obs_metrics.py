"""Tests for the metrics registry and the ledger bridge."""

import pytest

from repro.crypto.ledger import OperationLedger
from repro.obs.metrics import MetricsRegistry, record_op_counts


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    reg.counter("net.frames", src="d0", dst="d1").inc()
    reg.counter("net.frames", dst="d1", src="d0").inc(2)  # label order-free
    assert reg.counter("net.frames", src="d0", dst="d1").value == 3


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("queue", daemon="d0")
    g.set(5)
    g.inc()
    g.dec(3)
    assert g.value == 3


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    h = reg.histogram("latency")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.min == 1.0 and h.max == 3.0
    assert h.mean == pytest.approx(2.0)


def test_disabled_registry_hands_out_noops():
    reg = MetricsRegistry(enabled=False)
    reg.counter("x").inc()
    reg.gauge("y").set(9)
    reg.histogram("z").observe(1.0)
    assert reg.snapshot() == []


def test_counter_total_aggregates_over_labels():
    reg = MetricsRegistry()
    reg.counter("net.bytes", src="d0", dst="d1").inc(10)
    reg.counter("net.bytes", src="d0", dst="d2").inc(5)
    reg.counter("net.bytes", src="d1", dst="d0").inc(1)
    assert reg.counter_total("net.bytes") == 16
    assert reg.counter_total("net.bytes", src="d0") == 15


def test_snapshot_is_json_ready():
    reg = MetricsRegistry()
    reg.counter("a", k="v").inc()
    reg.gauge("b").set(2)
    reg.histogram("c").observe(1.5)
    rows = reg.snapshot()
    kinds = [row["kind"] for row in rows]
    assert kinds == ["counter", "gauge", "histogram"]
    assert rows[0]["labels"] == {"k": "v"}
    assert rows[2]["mean"] == 1.5


def test_ledger_bridge_labels_by_modulus_bits():
    ledger = OperationLedger()
    ledger.record_exponentiation(512, 4)
    ledger.record_exponentiation(1024, 2)
    ledger.record_small_exponentiation(512, 5)  # 2 squarings + 1 multiply
    ledger.record_multiplication(512, 7)
    ledger.record_signature(3)
    ledger.record_verification(1)
    reg = MetricsRegistry()
    record_op_counts(reg, ledger.snapshot(), member="m0", epoch="e1")
    assert reg.counter_total("crypto.exponentiations", member="m0") == 6
    assert reg.counter_total("crypto.exponentiations", bits=1024) == 2
    assert reg.counter_total("crypto.small_exp_multiplications") == 3
    assert reg.counter_total("crypto.multiplications") == 7
    assert reg.counter_total("crypto.signatures", epoch="e1") == 3
    assert reg.counter_total("crypto.verifications") == 1


def test_ledger_bridge_noop_when_disabled():
    ledger = OperationLedger()
    ledger.record_signature()
    reg = MetricsRegistry(enabled=False)
    record_op_counts(reg, ledger.snapshot(), member="m0")
    assert reg.snapshot() == []
