"""Tests for the metrics registry and the ledger bridge."""

import json
import random

import pytest

from repro.crypto.ledger import OperationLedger
from repro.obs.metrics import MetricsRegistry, record_op_counts


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    reg.counter("net.frames", src="d0", dst="d1").inc()
    reg.counter("net.frames", dst="d1", src="d0").inc(2)  # label order-free
    assert reg.counter("net.frames", src="d0", dst="d1").value == 3


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("queue", daemon="d0")
    g.set(5)
    g.inc()
    g.dec(3)
    assert g.value == 3


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    h = reg.histogram("latency")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.min == 1.0 and h.max == 3.0
    assert h.mean == pytest.approx(2.0)


def test_disabled_registry_hands_out_noops():
    reg = MetricsRegistry(enabled=False)
    reg.counter("x").inc()
    reg.gauge("y").set(9)
    reg.histogram("z").observe(1.0)
    assert reg.snapshot() == []


def test_counter_total_aggregates_over_labels():
    reg = MetricsRegistry()
    reg.counter("net.bytes", src="d0", dst="d1").inc(10)
    reg.counter("net.bytes", src="d0", dst="d2").inc(5)
    reg.counter("net.bytes", src="d1", dst="d0").inc(1)
    assert reg.counter_total("net.bytes") == 16
    assert reg.counter_total("net.bytes", src="d0") == 15


def test_snapshot_is_json_ready():
    reg = MetricsRegistry()
    reg.counter("a", k="v").inc()
    reg.gauge("b").set(2)
    reg.histogram("c").observe(1.5)
    rows = reg.snapshot()
    kinds = [row["kind"] for row in rows]
    assert kinds == ["counter", "gauge", "histogram"]
    assert rows[0]["labels"] == {"k": "v"}
    assert rows[2]["mean"] == 1.5


def _worker_shard(seed):
    """One simulated worker's registry: every instrument kind."""
    rng = random.Random(seed)
    reg = MetricsRegistry()
    for _ in range(rng.randrange(5, 40)):
        reg.counter("net.frames", src="d0").inc(rng.randrange(1, 9))
        reg.histogram("cell.ms", kind="scale").observe(rng.uniform(0.1, 50))
        reg.log_histogram(
            "member.rekey_ms", protocol="BD"
        ).observe(rng.expovariate(0.05))
        reg.series("rekey.latency", group="g").record(
            rng.uniform(0, 1000), rng.uniform(1, 60)
        )
    return reg.snapshot()


@pytest.mark.parametrize("seed", range(3))
def test_merge_snapshot_is_order_independent(seed):
    """Shards folded in any completion order yield bit-identical state.

    This is the property the parallel benchmark pool leans on: counters
    and histogram totals are fsum partials, log-histogram buckets are
    integers, series unions re-sort — so only gauges (deliberately
    last-wins) are excluded here.
    """
    rng = random.Random(1000 + seed)
    shards = [_worker_shard(s) for s in range(6)]

    def fold(order):
        reg = MetricsRegistry()
        for index in order:
            reg.merge_snapshot(shards[index])
        return reg.snapshot()

    forward = fold(range(len(shards)))
    shuffled = list(range(len(shards)))
    rng.shuffle(shuffled)
    assert fold(shuffled) == forward  # bit-identical, not approx
    reversed_fold = fold(reversed(range(len(shards))))
    assert reversed_fold == forward


def test_merge_snapshot_round_trips_through_json():
    """A snapshot that crossed a process pipe (string bucket keys, lists
    for points) merges identically to the in-process original."""
    reg = MetricsRegistry()
    reg.log_histogram("h").observe(3.0)
    reg.series("s").record(1.0, 2.0)
    reg.counter("c").inc(4)
    rows = json.loads(json.dumps(reg.snapshot()))
    direct = MetricsRegistry()
    direct.merge_snapshot(reg.snapshot())
    piped = MetricsRegistry()
    piped.merge_snapshot(rows)
    assert piped.snapshot() == direct.snapshot()
    assert piped.log_histogram("h").quantile(0.5) > 0.0


def test_merge_snapshot_preserves_percentiles():
    samples = [float(v) for v in range(1, 201)]
    whole = MetricsRegistry()
    for v in samples:
        whole.log_histogram("lat").observe(v)
    merged = MetricsRegistry()
    for lo in range(0, 200, 50):  # four shards of 50 samples each
        shard = MetricsRegistry()
        for v in samples[lo:lo + 50]:
            shard.log_histogram("lat").observe(v)
        merged.merge_snapshot(shard.snapshot())
    assert (
        merged.log_histogram("lat").percentiles()
        == whole.log_histogram("lat").percentiles()
    )


def test_merge_snapshot_ignored_when_disabled():
    reg = MetricsRegistry(enabled=False)
    reg.merge_snapshot(_worker_shard(0))
    assert reg.snapshot() == []


def test_ledger_bridge_labels_by_modulus_bits():
    ledger = OperationLedger()
    ledger.record_exponentiation(512, 4)
    ledger.record_exponentiation(1024, 2)
    ledger.record_small_exponentiation(512, 5)  # 2 squarings + 1 multiply
    ledger.record_multiplication(512, 7)
    ledger.record_signature(3)
    ledger.record_verification(1)
    reg = MetricsRegistry()
    record_op_counts(reg, ledger.snapshot(), member="m0", epoch="e1")
    assert reg.counter_total("crypto.exponentiations", member="m0") == 6
    assert reg.counter_total("crypto.exponentiations", bits=1024) == 2
    assert reg.counter_total("crypto.small_exp_multiplications") == 3
    assert reg.counter_total("crypto.multiplications") == 7
    assert reg.counter_total("crypto.signatures", epoch="e1") == 3
    assert reg.counter_total("crypto.verifications") == 1


def test_ledger_bridge_noop_when_disabled():
    ledger = OperationLedger()
    ledger.record_signature()
    reg = MetricsRegistry(enabled=False)
    record_op_counts(reg, ledger.snapshot(), member="m0")
    assert reg.snapshot() == []
