"""CKD specifics: controller role, channel lifecycle, costs."""


from repro.protocols import CkdProtocol
from repro.protocols.loopback import build_group


def test_controller_is_oldest_member():
    loop = build_group(CkdProtocol, 4)
    stats = loop.join("x")
    dist = [m for m in stats.messages if m.step == "ckd-dist"]
    assert dist[0].sender == "m0"


def test_join_is_three_rounds_three_messages():
    """Table 1: CKD join = 3 rounds (pub, reply, distribute)."""
    loop = build_group(CkdProtocol, 5)
    stats = loop.join("x")
    assert stats.rounds == 3
    assert stats.total_messages == 3
    steps = [m.step for m in stats.messages]
    assert steps == ["ckd-pub", "ckd-reply", "ckd-dist"]


def test_merge_uses_m_plus_2_messages():
    loop = build_group(CkdProtocol, 4)
    stats = loop.mass_join(["x0", "x1", "x2"])
    assert stats.rounds == 3
    assert stats.total_messages == 3 + 2  # pub + m replies + dist


def test_steady_state_leave_is_single_broadcast():
    """Channels persist, so a non-controller leave needs no setup round."""
    loop = build_group(CkdProtocol, 6)
    stats = loop.leave("m3")
    assert stats.rounds == 1
    assert stats.total_messages == 1
    assert stats.messages[0].step == "ckd-dist"


def test_controller_leave_forces_channel_reestablishment():
    """The expensive case the paper weights with probability 1/n: the new
    controller must run DH with every remaining member."""
    loop = build_group(CkdProtocol, 5)
    stats = loop.leave("m0")
    steps = [m.step for m in stats.messages]
    assert steps.count("ckd-pub") == 1
    assert steps.count("ckd-reply") == 3  # every survivor but the controller
    assert steps.count("ckd-dist") == 1
    assert stats.rounds == 3
    dist = [m for m in stats.messages if m.step == "ckd-dist"]
    assert dist[0].sender == "m1"


def test_leave_controller_cost_linear():
    loop = build_group(CkdProtocol, 9)
    stats = loop.leave("m4")
    # 1 group secret + (n-1) encrypted entries
    assert stats.exponentiations("m0") == len(stats.members)


def test_member_decrypt_cost_constant():
    for size in (4, 10):
        loop = build_group(CkdProtocol, size, prefix=f"s{size}m")
        stats = loop.leave(f"s{size}m2")
        non_controller = stats.members[-1]
        assert stats.exponentiations(non_controller) == 1


def test_channels_survive_unrelated_leaves():
    """A member's channel state is untouched by other members' departures."""
    loop = build_group(CkdProtocol, 5)
    loop.leave("m2")
    loop.leave("m3")
    member = loop.protocols["m1"]
    assert "m0" in member._pair


def test_distribution_table_excludes_controller():
    loop = build_group(CkdProtocol, 4)
    stats = loop.join("x")
    dist = [m for m in stats.messages if m.step == "ckd-dist"][0]
    assert set(dist.body["table"]) == set(stats.members) - {"m0"}


def test_key_is_not_contributory():
    """The group secret is whatever the controller generated (g^s)."""
    loop = build_group(CkdProtocol, 3)
    controller = loop.protocols["m0"]
    assert loop.shared_key() == controller.key
