"""Tests for ledger-charged modular arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.groups import GROUP_TINY
from repro.crypto.modmath import GroupElementContext
from repro.crypto.rng import DeterministicRandom


@pytest.fixture()
def ctx():
    return GroupElementContext(GROUP_TINY)


def test_exp_matches_pow_and_is_charged(ctx):
    result = ctx.exp(ctx.group.g, 17)
    assert result == pow(ctx.group.g, 17, ctx.group.p)
    assert ctx.ledger.snapshot().exp_count(ctx.group.p_bits) == 1


def test_exp_g_blinds_secret(ctx):
    assert ctx.exp_g(5) == pow(ctx.group.g, 5, ctx.group.p)


def test_small_exp_charged_as_multiplications(ctx):
    ctx.small_exp(ctx.group.g, 6)  # 0b110 -> 2 squarings + 1 multiply
    snap = ctx.ledger.snapshot()
    assert snap.exp_count() == 0
    assert snap.small_mult_count(ctx.group.p_bits) == 3


def test_mul_and_inverse(ctx):
    a = pow(ctx.group.g, 3, ctx.group.p)
    assert ctx.mul(a, ctx.inv_element(a)) == 1


def test_inv_exponent_round_trip(ctx):
    e = 123 % ctx.group.q
    inv = ctx.inv_exponent(e)
    assert (e * inv) % ctx.group.q == 1


def test_exponent_product(ctx):
    assert ctx.exponent_product(400, 300) == (400 * 300) % ctx.group.q


def test_random_exponent_in_range(ctx):
    rng = DeterministicRandom(5)
    for _ in range(100):
        e = ctx.random_exponent(rng)
        assert 2 <= e < ctx.group.q


@given(st.integers(min_value=2, max_value=508), st.integers(min_value=2, max_value=508))
def test_exp_homomorphism(x, y):
    """g^x * g^y == g^(x+y mod q) in the subgroup."""
    ctx = GroupElementContext(GROUP_TINY)
    lhs = ctx.mul(ctx.exp_g(x), ctx.exp_g(y))
    rhs = ctx.exp_g((x + y) % ctx.group.q)
    assert lhs == rhs


@given(st.integers(min_value=2, max_value=508))
def test_factor_out_round_trip(e):
    """(g^e)^(e^-1 mod q) == g — the identity GDH's factor-out step relies on."""
    ctx = GroupElementContext(GROUP_TINY)
    blinded = ctx.exp_g(e)
    assert ctx.exp(blinded, ctx.inv_exponent(e)) == ctx.group.g % ctx.group.p
