"""Additional protocol-level properties: secrecy-shaped state invariants,
tree-height bounds under churn, and message hygiene."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group

ALL = sorted(PROTOCOLS.items())


@pytest.mark.parametrize("name,cls", ALL)
class TestMessageHygiene:
    def test_no_message_carries_the_group_key(self, name, cls):
        """The group key is never transmitted — only blinded/partial
        values (the defining property of contributory key agreement; for
        CKD the secret travels only exponent-blinded)."""
        loop = build_group(cls, 6)
        key = loop.shared_key()
        stats = loop.last_stats
        for message in stats.messages:
            assert key not in _ints_in(message.body), (
                f"{name} leaked the group key in {message.step}"
            )

    def test_no_message_carries_session_secrets(self, name, cls):
        """Members' private exponents never appear in any message."""
        loop = build_group(cls, 5)
        secrets = set()
        for proto in loop.protocols.values():
            for attr in ("_r", "_session", "_x"):
                value = getattr(proto, attr, None)
                if isinstance(value, int):
                    secrets.add(value)
        stats = loop.last_stats
        for message in stats.messages:
            carried = _ints_in(message.body)
            assert not (secrets & carried), (
                f"{name} leaked a private exponent in {message.step}"
            )

    def test_epochs_tag_every_message(self, name, cls):
        loop = build_group(cls, 4)
        stats = loop.join("x")
        epochs = {m.epoch for m in stats.messages}
        assert len(epochs) == 1


def _ints_in(value, found=None):
    found = set() if found is None else found
    if isinstance(value, bool):
        return found
    if isinstance(value, int):
        found.add(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            _ints_in(k, found)
            _ints_in(v, found)
    elif isinstance(value, (list, tuple, set)):
        for item in value:
            _ints_in(item, found)
    return found


class TestTgdhHeightBound:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 30)),
            min_size=5,
            max_size=25,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_height_stays_logarithmic_under_churn(self, script):
        """The paper (footnote 7): TGDH's best-effort balancing keeps the
        height below 2·log2(n) for additive events; churn can degrade it
        but never past the number of members."""
        loop = build_group(PROTOCOLS["TGDH"], 4)
        counter = [4]
        for grow, pick in script:
            members = list(loop.members())
            if grow or len(members) <= 2:
                loop.join(f"m{counter[0]}")
                counter[0] += 1
            else:
                loop.leave(members[pick % len(members)])
        tree = loop.protocols[loop.members()[0]]._tree
        n = len(loop.members())
        assert tree.height() < n
        # Internal consistency: member count matches the view.
        assert sorted(tree.members()) == sorted(loop.members())

    def test_sequential_joins_meet_the_paper_bound(self):
        for n in (8, 16, 32, 50):
            loop = build_group(PROTOCOLS["TGDH"], n, prefix=f"h{n}-")
            height = loop.protocols[f"h{n}-0"]._tree.height()
            assert height <= 2 * math.ceil(math.log2(n))


class TestKeyEvolution:
    @pytest.mark.parametrize("name,cls", ALL)
    def test_fifty_events_never_repeat_a_key(self, name, cls):
        loop = build_group(cls, 4)
        seen = {loop.shared_key()}
        counter = 4
        for i in range(25):
            if i % 2 == 0:
                loop.join(f"m{counter}")
                counter += 1
            else:
                loop.leave(list(loop.members())[1])
            key = loop.shared_key()
            assert key not in seen, f"{name} repeated a key at event {i}"
            seen.add(key)
