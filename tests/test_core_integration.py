"""End-to-end Secure Spread integration tests over the simulated GCS.

These exercise the full stack of the paper's system: Spread daemons,
token-ring Agreed multicast, view-synchronous membership, signed key
agreement messages, CPU cost charging, and group-data encryption.
"""

import pytest

from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed, wan_testbed
from repro.protocols import PROTOCOLS

FAST = dict(dh_group="dh-test")


def _framework(protocol, topology=None, **kwargs):
    options = dict(FAST)
    options.update(kwargs)
    return SecureSpreadFramework(
        topology or lan_testbed(), default_protocol=protocol, **options
    )


def _join_all(framework, members):
    for member in members:
        framework.timeline.mark_event(framework.now)
        member.join()
        framework.run_until_idle()


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
class TestAllProtocolsOverGcs:
    def test_sequential_joins_reach_shared_key(self, protocol):
        fw = _framework(protocol)
        members = fw.spawn_members(6)
        _join_all(fw, members)
        keys = {m.key_bytes for m in members}
        assert len(keys) == 1
        assert keys.pop() is not None

    def test_leave_rekeys_survivors(self, protocol):
        fw = _framework(protocol)
        members = fw.spawn_members(5)
        _join_all(fw, members)
        old = members[0].key_bytes
        fw.timeline.mark_event(fw.now)
        members[2].leave()
        fw.run_until_idle()
        survivors = [m for i, m in enumerate(members) if i != 2]
        keys = {m.key_bytes for m in survivors}
        assert len(keys) == 1
        assert keys.pop() != old

    def test_network_partition_and_merge(self, protocol):
        fw = _framework(protocol)
        members = fw.spawn_members(6)
        _join_all(fw, members)
        fw.timeline.mark_event(fw.now)
        fw.world.partition([[0, 1, 2], [3, 4, 5] + list(range(6, 13))])
        fw.run_until_idle()
        left_keys = {members[i].key_bytes for i in (0, 1, 2)}
        right_keys = {members[i].key_bytes for i in (3, 4, 5)}
        assert len(left_keys) == 1 and len(right_keys) == 1
        assert left_keys != right_keys
        fw.timeline.mark_event(fw.now)
        fw.world.heal()
        fw.run_until_idle()
        merged = {m.key_bytes for m in members}
        assert len(merged) == 1

    def test_secure_data_roundtrip(self, protocol):
        fw = _framework(protocol)
        members = fw.spawn_members(4)
        _join_all(fw, members)
        members[1].send_secure(b"the eagle lands at midnight")
        fw.run_until_idle()
        for i in (0, 2, 3):
            assert ("m1", b"the eagle lands at midnight") in members[i].inbox


class TestFrameworkFeatures:
    def test_different_protocols_for_different_groups(self):
        """The paper's framework contribution: per-group protocol choice."""
        fw = _framework("TGDH")
        fw.set_group_protocol("alpha", "BD")
        fw.set_group_protocol("beta", "GDH")
        a = fw.member("a1", 0, "alpha")
        b = fw.member("b1", 1, "beta")
        c = fw.member("c1", 2, "gamma")  # default
        assert type(a.protocol).name == "BD"
        assert type(b.protocol).name == "GDH"
        assert type(c.protocol).name == "TGDH"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            _framework("NOPE")
        fw = _framework("BD")
        with pytest.raises(ValueError):
            fw.set_group_protocol("g", "NOPE")

    def test_member_of_two_groups(self):
        """A client can be in several groups, each with its own protocol."""
        fw = _framework("TGDH")
        fw.set_group_protocol("g1", "BD")
        fw.set_group_protocol("g2", "STR")
        a1 = fw.member("proc-a-g1", 0, "g1")
        b1 = fw.member("proc-b-g1", 1, "g1")
        a2 = fw.member("proc-a-g2", 0, "g2")
        b2 = fw.member("proc-b-g2", 1, "g2")
        for member in (a1, b1, a2, b2):
            member.join()
        fw.run_until_idle()
        assert a1.key_bytes == b1.key_bytes
        assert a2.key_bytes == b2.key_bytes
        assert a1.key_bytes != a2.key_bytes

    def test_real_signatures_verify(self):
        fw = _framework("TGDH", sign_for_real=True, rsa_bits=256)
        members = fw.spawn_members(3)
        _join_all(fw, members)
        assert len({m.key_bytes for m in members}) == 1

    def test_queued_sends_released_after_rekey(self):
        fw = _framework("STR")
        members = fw.spawn_members(3)
        _join_all(fw, members)
        # Send immediately after initiating a join; the message is queued
        # until the new epoch completes, then delivered under the new key.
        extra = fw.member("late", 5)
        extra.join()
        members[0].send_secure(b"queued during rekey")
        fw.run_until_idle()
        assert ("m0", b"queued during rekey") in members[2].inbox

    def test_cascaded_events_converge(self):
        """Robustness (§1.2): a second membership change arriving before
        the first agreement finishes aborts and restarts it."""
        fw = _framework("TGDH")
        members = fw.spawn_members(5)
        _join_all(fw, members)
        a = fw.member("a", 5)
        b = fw.member("b", 6)
        a.join()
        b.join()  # lands while the first agreement is still running
        fw.run_until_idle()
        everyone = members + [a, b]
        assert len({m.key_bytes for m in everyone}) == 1

    def test_cascaded_leave_during_join_agreement(self):
        fw = _framework("GDH")
        members = fw.spawn_members(6)
        _join_all(fw, members)
        late = fw.member("late", 6)
        late.join()
        members[4].leave()  # cascades into the join agreement
        fw.run_until_idle()
        current = [m for m in members if m is not members[4]] + [late]
        assert len({m.key_bytes for m in current}) == 1

    def test_timeline_measures_membership_and_total(self):
        fw = _framework("TGDH")
        members = fw.spawn_members(4)
        _join_all(fw, members)
        record = fw.timeline.latest_complete()
        assert record.total_elapsed() > record.membership_elapsed() > 0


class TestWan:
    def test_wan_join_latency_band(self):
        """Membership + key agreement on the WAN testbed lands in the
        paper's hundreds-of-milliseconds regime (Figure 14)."""
        fw = _framework("TGDH", topology=wan_testbed())
        members = fw.spawn_members(6)
        _join_all(fw, members)
        record = fw.timeline.latest_complete()
        assert 200 < record.total_elapsed() < 3000
        assert 100 < record.membership_elapsed() < 900

    def test_wan_all_protocols_converge(self):
        for protocol in sorted(PROTOCOLS):
            fw = _framework(protocol, topology=wan_testbed())
            members = fw.spawn_members(4)
            _join_all(fw, members)
            assert len({m.key_bytes for m in members}) == 1, protocol
