"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(5, fired.append, label)
    sim.run_until_idle()
    assert fired == list("abcde")


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule(10, outer)
    sim.run_until_idle()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.schedule(5, event.cancel)
    sim.run_until_idle()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_until_idle()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, "early")
    sim.schedule(150, fired.append, "late")
    sim.run(until=100)
    assert fired == ["early"]
    assert sim.now == 100
    sim.run(until=200)
    assert fired == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert not sim.step()


def test_livelock_guard():
    sim = Simulator()

    def rescheduling():
        sim.schedule(1, rescheduling)

    sim.schedule(0, rescheduling)
    with pytest.raises(RuntimeError):
        sim.run_until_idle(max_events=100)


def test_run_until_idle_budget_is_exact():
    # Regression: the guard used to fire max_events + 1 events before
    # raising.  A queue of exactly max_events drains cleanly ...
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run_until_idle(max_events=5)
    assert sim.events_processed == 5
    # ... and one event more raises after the budget, not past it.
    sim = Simulator()
    for i in range(6):
        sim.schedule(i, lambda: None)
    with pytest.raises(RuntimeError):
        sim.run_until_idle(max_events=5)
    assert sim.events_processed == 5
    assert sim.active_pending == 1


def test_run_until_then_earlier_schedule_fires_in_order():
    # A run(until=...) that stops short of a queued event must not let
    # that event jump ahead of ones scheduled later at earlier times.
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, "late")
    sim.run(until=10)
    sim.schedule_at(20, fired.append, "early")
    sim.schedule_at(50, fired.append, "later-seq")
    sim.run_until_idle()
    assert fired == ["early", "late", "later-seq"]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 4


def test_active_pending_excludes_cancelled_events():
    sim = Simulator()
    keep = sim.schedule(10, lambda: None)
    doomed = sim.schedule(20, lambda: None)
    assert sim.pending == 2
    assert sim.active_pending == 2
    doomed.cancel()
    assert sim.pending == 2  # heap entry still present
    assert sim.active_pending == 1
    doomed.cancel()  # idempotent: no double count
    assert sim.active_pending == 1
    sim.run_until_idle()
    assert sim.pending == 0 and sim.active_pending == 0
    keep.cancel()  # already fired: must not corrupt the counter
    assert sim.active_pending == 0


def test_cancelled_head_popped_by_run_keeps_count():
    sim = Simulator()
    early = sim.schedule(1, lambda: None)
    sim.schedule(50, lambda: None)
    early.cancel()
    sim.run(until=10)  # pops the cancelled head without firing it
    assert sim.active_pending == 1
    assert sim.pending == 1


def test_lazy_compaction_shrinks_the_heap():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()
    # well past the compaction threshold: cancelled entries were purged
    assert sim.pending < 200
    assert sim.active_pending == 50
    fired = []
    sim.schedule(500, fired.append, "last")
    sim.run_until_idle()
    assert fired == ["last"]
    assert sim.events_processed == 51


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_delivery_order_is_sorted_for_any_delays(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda t=d: fired.append(t))
    sim.run_until_idle()
    assert fired == sorted(fired)
