"""Verification of the fixed Schnorr groups and lookup helpers."""

import pytest

from repro.crypto.groups import (
    GROUP_512,
    GROUP_1024,
    GROUP_2048,
    GROUP_TEST,
    GROUP_TINY,
    get_group,
)
from repro.crypto.primes import is_probable_prime


@pytest.mark.parametrize(
    "group,p_bits",
    [
        (GROUP_512, 512),
        (GROUP_1024, 1024),
        (GROUP_2048, 2048),
        (GROUP_TEST, 64),
        (GROUP_TINY, 10),
    ],
)
def test_group_parameters_are_valid(group, p_bits):
    assert group.p_bits == p_bits
    assert is_probable_prime(group.p)
    assert is_probable_prime(group.q)
    assert (group.p - 1) % group.q == 0
    assert pow(group.g, group.q, group.p) == 1
    assert group.g not in (0, 1)


@pytest.mark.parametrize("group", [GROUP_512, GROUP_1024, GROUP_2048])
def test_paper_exponent_size(group):
    # The paper uses 160-bit q for both 512- and 1024-bit p.
    assert group.q_bits == 160


def test_contains_accepts_subgroup_elements():
    element = pow(GROUP_TINY.g, 17, GROUP_TINY.p)
    assert GROUP_TINY.contains(element)


def test_contains_rejects_outside_elements():
    assert not GROUP_TINY.contains(0)
    assert not GROUP_TINY.contains(GROUP_TINY.p)
    # 2 generates the full group mod 1019 (order 1018, not 509).
    assert not GROUP_TINY.contains(2)


def test_get_group_by_name_bits_and_identity():
    assert get_group("dh-512") is GROUP_512
    assert get_group(1024) is GROUP_1024
    assert get_group(GROUP_TEST) is GROUP_TEST


def test_get_group_unknown_raises():
    with pytest.raises(KeyError):
        get_group("dh-333")
    with pytest.raises(KeyError):
        get_group(333)
