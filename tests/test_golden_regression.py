"""Golden regression guard: the simulation is deterministic, so these
exact numbers must not drift silently.

If a change to the cost model, the token ring, the membership protocol or
a key agreement protocol moves these values, that is a *modelling change*:
re-derive the figures, update EXPERIMENTS.md, and refresh the constants
here deliberately.
"""

import pytest

from repro.bench.harness import measure_event
from repro.gcs.topology import lan_testbed, wan_testbed

#: (testbed, protocol) -> (total_ms, membership_ms) for a join at n=6,
#: dh-512, seed 0, one repeat.
GOLDEN = {
    ("lan", "TGDH"): (44.530000, 2.790000),
    ("lan", "BD"): (44.943333, 2.700853),
    ("lan", "GDH"): (76.350000, 2.680000),
    ("wan", "TGDH"): (806.150000, 319.450000),
    ("wan", "BD"): (969.073333, 317.370853),
    ("wan", "GDH"): (1128.890000, 319.340000),
}

_TESTBEDS = {"lan": lan_testbed, "wan": wan_testbed}


@pytest.mark.parametrize("testbed,protocol", sorted(GOLDEN))
def test_join_timing_matches_golden_value(testbed, protocol):
    measurement = measure_event(
        _TESTBEDS[testbed], protocol, 6, "join",
        dh_group="dh-512", repeats=1, seed=0,
    )
    expected_total, expected_membership = GOLDEN[(testbed, protocol)]
    assert measurement.total_ms == pytest.approx(expected_total, abs=1e-3)
    assert measurement.membership_ms == pytest.approx(
        expected_membership, abs=1e-3
    )
