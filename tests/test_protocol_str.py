"""STR specifics: the skinny-tree chain, sponsor position, caching."""


from repro.crypto.groups import GROUP_TEST
from repro.protocols import StrProtocol
from repro.protocols.loopback import build_group


def _chain_key(order, protocols):
    """Recompute k_n = g^(r_n * g^(r_{n-1} * ...)) from member secrets."""
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    key = protocols[order[0]]._session
    for member in order[1:]:
        key = pow(g, (protocols[member]._session * (key % q)) % q, p)
    return key


def test_key_matches_chain_definition():
    loop = build_group(StrProtocol, 6)
    order = loop.protocols["m0"]._order
    assert loop.shared_key() == _chain_key(order, loop.protocols)


def test_join_is_two_rounds_three_messages():
    loop = build_group(StrProtocol, 5)
    stats = loop.join("x")
    assert stats.rounds == 2
    assert stats.total_messages == 3


def test_new_member_joins_at_top():
    loop = build_group(StrProtocol, 4)
    loop.join("x")
    assert loop.protocols["m0"]._order[-1] == "x"


def test_leave_is_single_broadcast():
    loop = build_group(StrProtocol, 7)
    stats = loop.leave("m3")
    assert stats.rounds == 1
    assert stats.total_messages == 1


def test_leave_sponsor_is_member_below_leaver():
    loop = build_group(StrProtocol, 6)
    stats = loop.leave("m3")
    assert stats.messages[0].sender == "m2"


def test_bottom_leave_sponsor_is_new_bottom():
    loop = build_group(StrProtocol, 5)
    stats = loop.leave("m0")
    assert stats.messages[0].sender == "m1"
    assert loop.protocols["m1"]._order[0] == "m1"


def test_join_cost_per_member_constant_in_group_size():
    """Members cache the chain below the join point, so per-member join
    cost does not grow with n — what makes STR's join curve flat (Fig 11)."""
    costs = {}
    for n in (5, 25):
        loop = build_group(StrProtocol, n, prefix=f"g{n}m")
        stats = loop.join("x")
        costs[n] = stats.max_exponentiations()
    assert costs[25] <= costs[5] + 1


def test_join_serial_cost_about_seven():
    """§6.1.3: "BD involves only three full-blown exponentiations as
    opposed to STR's seven" — serial work = the sponsor's chain plus one
    (parallel) member's catch-up."""
    loop = build_group(StrProtocol, 10)
    stats = loop.join("x")
    sponsor_cost = stats.max_exponentiations()
    member_cost = stats.exponentiations("m0")
    serial = sponsor_cost + member_cost
    assert 5 <= serial <= 9
    assert sponsor_cost <= 6


def test_leave_cost_linear_with_three_halves_slope():
    """Figure 12: sponsor ~n exps plus members ~n/2 in the average case."""
    n = 20
    loop = build_group(StrProtocol, n)
    stats = loop.leave(f"m{n // 2}")  # the middle member, the paper's case
    sponsor = f"m{n // 2 - 1}"
    sponsor_cost = stats.exponentiations(sponsor)
    bottom_cost = stats.exponentiations("m0")
    assert n - 4 <= sponsor_cost <= n + 4
    assert n // 2 - 3 <= bottom_cost <= n // 2 + 3


def test_top_member_leave_is_cheap():
    loop = build_group(StrProtocol, 10)
    stats = loop.leave("m9")
    assert stats.max_exponentiations() <= 4


def test_merge_stacks_smaller_on_larger():
    loop = build_group(StrProtocol, 7)
    side = loop.partition(["m5", "m6"])
    loop.merge(side)
    order = loop.protocols["m0"]._order
    assert order[:5] == ["m0", "m1", "m2", "m3", "m4"]
    assert sorted(order[5:]) == ["m5", "m6"]


def test_merge_two_rounds():
    loop = build_group(StrProtocol, 6)
    side = loop.partition(["m4", "m5"])
    stats = loop.merge(side)
    assert stats.rounds == 2
    assert stats.total_messages == 3


def test_all_members_share_order():
    loop = build_group(StrProtocol, 6)
    loop.leave("m1")
    loop.join("z")
    reference = loop.protocols["m0"]._order
    for proto in loop.protocols.values():
        assert proto._order == reference


def test_blinded_keys_match_chain():
    loop = build_group(StrProtocol, 5)
    q, p, g = GROUP_TEST.q, GROUP_TEST.p, GROUP_TEST.g
    bottom = loop.protocols[loop.protocols["m0"]._order[0]]
    for proto in loop.protocols.values():
        for pos, key in proto._keys.items():
            published = proto._bk.get(pos)
            if published is not None:
                assert published == pow(g, key % q, p)
