"""Scale checks beyond the paper's 50-member ceiling.

The paper's testbed stopped at 50 members; these tests push the efficient
protocols to 100 to confirm the asymptotics hold and to guard the
simulator against accidental super-linear blowups (event counts, virtual
time)."""

import math


from repro.core import SecureSpreadFramework
from repro.gcs.topology import lan_testbed
from repro.protocols import PROTOCOLS
from repro.protocols.loopback import build_group


def test_tgdh_at_one_hundred_members_stays_logarithmic():
    loop = build_group(PROTOCOLS["TGDH"], 100)
    tree = loop.protocols["m0"]._tree
    assert tree.height() <= 2 * math.ceil(math.log2(100))
    stats = loop.leave("m50")
    # Sponsor work stays ~2h even at twice the paper's max size.
    assert stats.max_exponentiations() <= 2 * tree.height() + 4


def test_str_join_cost_flat_at_one_hundred():
    loop = build_group(PROTOCOLS["STR"], 100)
    stats = loop.join("x")
    assert stats.max_exponentiations() <= 6
    assert stats.rounds == 2


def test_simulated_group_of_eighty_completes_quickly():
    """Full-stack sanity at 80 members: the simulation must not blow up in
    event count (quadratic token or delivery bugs would)."""
    fw = SecureSpreadFramework(
        lan_testbed(), default_protocol="STR", dh_group="dh-test"
    )
    members = fw.spawn_members(80)
    for member in members:
        member.join()
        fw.run_until_idle()
    assert len({m.key_bytes for m in members}) == 1
    # A loose ceiling: ~sub-million events for 80 joins.
    assert fw.world.sim.events_processed < 1_500_000
    # Virtual time: 80 joins at tens of ms each stays under a minute.
    assert fw.now < 60_000
