"""TGDH specifics: sponsors, rounds, logarithmic costs, partitions."""

import math


from repro.protocols import TgdhProtocol
from repro.protocols.loopback import build_group


def test_join_is_two_rounds_three_messages():
    """Table 1: TGDH join/merge = 2 rounds, 3 messages."""
    loop = build_group(TgdhProtocol, 6)
    stats = loop.join("x")
    assert stats.rounds == 2
    assert stats.total_messages == 3
    steps = [m.step for m in stats.messages]
    assert steps.count("tgdh-tree") == 2  # both round-1 sponsors
    assert steps.count("tgdh-bkeys") == 1  # the round-2 sponsor


def test_leave_is_one_round_one_message():
    loop = build_group(TgdhProtocol, 8)
    stats = loop.leave("m3")
    assert stats.rounds == 1
    assert stats.total_messages == 1
    assert stats.messages[0].step == "tgdh-bkeys"


def test_trees_identical_at_all_members():
    loop = build_group(TgdhProtocol, 7)
    loop.leave("m2")
    loop.join("y")
    reference = None
    for proto in loop.protocols.values():
        shape = _shape(proto._tree.root)
        reference = reference or shape
        assert shape == reference


def _shape(node):
    if node.is_leaf:
        return (node.member, node.bkey)
    return (_shape(node.left), _shape(node.right), node.bkey)


def test_members_know_exactly_their_path_keys():
    """Each member knows the keys on its leaf-to-root path and only those."""
    loop = build_group(TgdhProtocol, 6)
    for name, proto in loop.protocols.items():
        path = set(map(id, proto._tree.path(name)))
        for node in proto._tree._all_nodes():
            if id(node) in path:
                assert node.key is not None
            elif not node.is_leaf:
                assert node.key is None, f"{name} knows an off-path key"


def test_blinded_keys_consistent_with_keys():
    """Wherever a member knows both, bkey == g^(key mod q)."""
    loop = build_group(TgdhProtocol, 6)
    grp = loop.group
    for proto in loop.protocols.values():
        for node in proto._tree._all_nodes():
            if node.key is not None and node.bkey is not None:
                assert node.bkey == pow(grp.g, node.key % grp.q, grp.p)


def test_sponsor_exponentiations_logarithmic():
    """The sponsor's work is O(log n), not O(n) — TGDH's selling point."""
    costs = {}
    for n in (8, 32):
        loop = build_group(TgdhProtocol, n, prefix=f"g{n}m")
        stats = loop.leave(f"g{n}m{n // 2}")
        costs[n] = stats.max_exponentiations()
    assert costs[32] <= costs[8] + 2 * (math.log2(32) - math.log2(8)) + 2


def test_partition_completes_within_height_rounds():
    """Figure 6: partition takes at most h sponsor rounds."""
    loop = build_group(TgdhProtocol, 16)
    height = loop.protocols["m0"]._tree.height()
    stats = loop.mass_leave([f"m{i}" for i in (1, 4, 7, 9, 12, 14)])
    assert stats.rounds <= height
    loop.shared_key()


def test_partition_of_half_the_group():
    loop = build_group(TgdhProtocol, 12)
    stats = loop.mass_leave([f"m{i}" for i in range(0, 12, 2)])
    assert loop.members() == tuple(f"m{i}" for i in range(1, 12, 2))
    loop.shared_key()


def test_merge_of_two_trees_keeps_both_structures():
    loop = build_group(TgdhProtocol, 8)
    side = loop.partition(["m1", "m2", "m3"])
    assert sorted(side.protocols["m1"]._tree.members()) == ["m1", "m2", "m3"]
    loop.merge(side)
    tree = loop.protocols["m0"]._tree
    assert sorted(tree.members()) == sorted(loop.members())


def test_root_bkey_is_never_broadcast():
    """"The keys are never broadcasted" — and the root *blinded* key is
    useless, so sponsors never publish it either (except as a component
    root during merges, where it becomes an internal node)."""
    loop = build_group(TgdhProtocol, 6)
    stats = loop.leave("m2")
    for message in stats.messages:
        if message.step == "tgdh-bkeys":
            assert "" not in message.body["updates"]


def test_join_sponsor_refreshes_session_random():
    loop = build_group(TgdhProtocol, 4)
    sponsor = loop.protocols["m0"]._tree.rightmost_member()
    before = loop.protocols[sponsor]._session
    loop.join("x")
    assert loop.protocols[sponsor]._session != before
