"""The parallel experiment pool, its result cache, and ``bench compare``."""

import json
import runpy
import sys
import time

import pytest

from repro.bench.cli import main
from repro.bench.compare import compare_payloads
from repro.bench.pool import (
    Cell,
    ResultCache,
    cell_key,
    pool_stats,
    register_runner,
    run_cells,
    source_fingerprint,
)
from repro.bench.scale import run_scale, scale_payload, write_scale_json
from repro.obs import MetricsRegistry

EXECUTIONS = []


@register_runner("test-echo")
def _echo_runner(spec, metrics):
    """Deterministic toy runner; staggers sleeps to scramble completion
    order so merge-order tests actually exercise the reordering."""
    EXECUTIONS.append(spec["index"])
    time.sleep(0.05 if spec["index"] % 2 == 0 else 0.0)
    metrics.counter("test.echo.runs").inc()
    return {"index": spec["index"], "value": spec["index"] * 10}


def _echo_cells(count):
    return [Cell("test-echo", {"index": i}) for i in range(count)]


# -- shard/merge ordering -----------------------------------------------------


def test_results_merge_in_input_order_regardless_of_completion():
    results = run_cells(_echo_cells(6), jobs=4, use_cache=False)
    assert [r["index"] for r in results] == list(range(6))
    assert [r["value"] for r in results] == [i * 10 for i in range(6)]


def test_jobs_one_runs_inline_and_in_order():
    EXECUTIONS.clear()
    results = run_cells(_echo_cells(4), jobs=1, use_cache=False)
    assert [r["index"] for r in results] == list(range(4))
    # Inline execution: the cells ran in this process, in input order.
    assert EXECUTIONS == list(range(4))


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        run_cells([Cell("no-such-kind", {})], jobs=1, use_cache=False)


# -- the content-addressed cache ----------------------------------------------


def test_cache_hit_miss_and_fingerprint_invalidation(tmp_path):
    cells = _echo_cells(3)
    cache_dir = str(tmp_path / "cache")

    def sweep(fingerprint):
        registry = MetricsRegistry(enabled=True)
        results = run_cells(
            cells, jobs=1, cache_dir=cache_dir, use_cache=True,
            metrics=registry, fingerprint=fingerprint,
        )
        return results, pool_stats(registry)

    cold, stats = sweep("fp-aaa")
    assert stats == {
        "cells": 3, "cache_hits": 0, "cache_misses": 3, "executed": 3,
    }
    warm, stats = sweep("fp-aaa")
    assert stats["cache_hits"] == 3 and stats["executed"] == 0
    assert warm == cold
    # A source-tree change (different fingerprint) invalidates everything.
    _, stats = sweep("fp-bbb")
    assert stats["cache_hits"] == 0 and stats["executed"] == 3


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cell = Cell("test-echo", {"index": 7})
    cache_dir = str(tmp_path / "cache")
    run_cells(
        [cell], jobs=1, cache_dir=cache_dir, use_cache=True,
        fingerprint="fp",
    )
    cache = ResultCache(cache_dir)
    path = cache._path(cell_key(cell, "fp"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    registry = MetricsRegistry(enabled=True)
    (result,) = run_cells(
        [cell], jobs=1, cache_dir=cache_dir, use_cache=True,
        metrics=registry, fingerprint="fp",
    )
    assert result == {"index": 7, "value": 70}
    assert pool_stats(registry)["executed"] == 1
    # The corrupt entry was rewritten and is servable again.
    assert cache.load(cell_key(cell, "fp")) == result


def test_source_fingerprint_tracks_tree_content(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    first = source_fingerprint(str(tree))
    assert first == source_fingerprint(str(tree))
    (tree / "a.py").write_text("x = 2\n")
    assert source_fingerprint(str(tree)) != first
    # Non-Python files are not part of the fingerprint.
    changed = source_fingerprint(str(tree))
    (tree / "notes.txt").write_text("irrelevant\n")
    assert source_fingerprint(str(tree)) == changed


def test_worker_metrics_merge_back():
    registry = MetricsRegistry(enabled=True)
    run_cells(_echo_cells(5), jobs=2, use_cache=False, metrics=registry)
    assert registry.counter_total("test.echo.runs") == 5
    assert registry.counter_total("bench.pool.cells_executed") == 5


# -- --jobs 1 equivalence with the sequential path ----------------------------


def test_scale_jobs_equivalence_and_byte_identical_json(tmp_path):
    kwargs = dict(
        protocols=("BD", "TGDH"), sizes=(4,), dh_group="dh-test",
        engine="symbolic", use_cache=False,
    )
    sequential = run_scale(jobs=1, **kwargs)
    parallel = run_scale(jobs=2, **kwargs)
    assert sequential == parallel
    write_scale_json(str(tmp_path / "seq.json"), sequential, seed=0)
    write_scale_json(str(tmp_path / "par.json"), parallel, seed=0)
    assert (
        (tmp_path / "seq.json").read_bytes()
        == (tmp_path / "par.json").read_bytes()
    )
    # Cells carry exact op-ledger counts for the regression gate.
    for m in sequential:
        assert m.ops is not None
        assert all(isinstance(v, int) for v in m.ops.values())
        assert m.ops["exponentiations"] > 0


# -- bench compare ------------------------------------------------------------


def _payload(total=33.0, exps=15):
    return scale_payload(
        [],
        seed=0,
        engine="symbolic",
    ) | {
        "measurements": [
            {
                "protocol": "BD",
                "event": "join",
                "group_size": 4,
                "topology": "lan",
                "dh_group": "dh-test",
                "total_ms": total,
                "membership_ms": 3.0,
                "samples": 1,
                "engine": "symbolic",
                "ops": {"exponentiations": exps, "signatures": 10},
            }
        ]
    }


def test_compare_exact_match_passes():
    assert compare_payloads(_payload(), _payload()) == []


def test_compare_flags_simulated_time_drift():
    drifts = compare_payloads(_payload(total=33.0), _payload(total=33.01))
    assert len(drifts) == 1 and "total_ms" in drifts[0]
    # ... unless the drift is within an explicit tolerance.
    assert compare_payloads(
        _payload(total=33.0), _payload(total=33.01), tolerance=0.1
    ) == []
    assert compare_payloads(
        _payload(total=33.0), _payload(total=33.01), relative=0.01
    ) == []


def test_compare_flags_op_ledger_drift():
    drifts = compare_payloads(_payload(exps=15), _payload(exps=16))
    assert len(drifts) == 1
    assert "ops.exponentiations" in drifts[0]


def test_compare_flags_missing_and_extra_cells():
    one = _payload()
    empty = dict(one, measurements=[])
    assert any("missing in NEW" in d for d in compare_payloads(one, empty))
    assert any("missing in OLD" in d for d in compare_payloads(empty, one))


def test_compare_flags_meta_change():
    changed = dict(_payload(), engine="real")
    drifts = compare_payloads(_payload(), changed)
    assert any(d.startswith("meta.engine") for d in drifts)


# -- CLI exit codes -----------------------------------------------------------


def test_compare_cli_exit_codes(tmp_path, capsys):
    old = tmp_path / "old.json"
    same = tmp_path / "same.json"
    drifted = tmp_path / "drifted.json"
    old.write_text(json.dumps(_payload()))
    same.write_text(json.dumps(_payload()))
    drifted.write_text(json.dumps(_payload(total=34.0)))
    assert main(["compare", str(old), str(same)]) == 0
    assert "OK" in capsys.readouterr().out
    assert main(["compare", str(old), str(drifted)]) == 1
    assert "DRIFT" in capsys.readouterr().out
    assert main(["compare", str(old), str(drifted), "--tolerance", "2"]) == 0


def test_cli_errors_exit_nonzero_not_zero(tmp_path, capsys):
    # Unreadable artifact: a clean error line and exit 1, no traceback.
    missing = tmp_path / "nope.json"
    assert main(["compare", str(missing), str(missing)]) == 1
    assert "error:" in capsys.readouterr().err
    # Malformed artifact likewise.
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    assert main(["compare", str(bad), str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_module_entrypoint_raises_systemexit(tmp_path, monkeypatch):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_payload()))
    new.write_text(json.dumps(_payload(total=99.0)))
    monkeypatch.setattr(
        sys, "argv", ["repro.bench", "compare", str(old), str(new)]
    )
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro.bench", run_name="__main__")
    assert excinfo.value.code == 1
