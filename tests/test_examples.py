"""Smoke tests: every shipped example must run to completion.

The comparison example is exercised with a reduced sweep via its module
functions elsewhere (it takes ~a minute); the four narrative examples run
fully here in a few seconds each.
"""

import importlib
import sys

import pytest

sys.path.insert(0, "examples")

EXAMPLES = [
    "quickstart",
    "partition_healing",
    "replicated_whiteboard",
    "secure_conference_wan",
    "trace_rekey",
]


@pytest.mark.parametrize("module_name", EXAMPLES)
def test_example_runs_to_completion(module_name, capsys):
    module = importlib.import_module(module_name)
    module.main()  # examples assert their own invariants internally
    out = capsys.readouterr().out
    assert out.strip(), f"{module_name} produced no output"


def test_comparison_example_importable():
    module = importlib.import_module("protocol_comparison")
    assert callable(module.main)
