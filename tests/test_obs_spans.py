"""Tests for the span recorder and interval arithmetic."""

import pytest

from repro.obs.spans import Span, SpanRecorder, busy_time


def test_record_and_filter():
    rec = SpanRecorder()
    rec.record("crypto", "TGDH.start", "m0", "lan0", 1.0, 3.0, epoch="e1")
    rec.record("net", "frame d0->d1", "d0", "lan0", 2.0, 4.0)
    rec.record("crypto", "sign", "m1", "lan1", 5.0, 6.0)
    assert len(rec) == 3
    crypto = rec.filter(category="crypto")
    assert [s.actor for s in crypto] == ["m0", "m1"]
    mine = rec.filter(actor="m0")
    assert mine[0].attrs == {"epoch": "e1"}
    long_spans = rec.filter(predicate=lambda s: s.duration >= 2.0)
    assert len(long_spans) == 2


def test_instants_have_zero_duration():
    rec = SpanRecorder()
    rec.instant("membership", "event", "world", "world", 7.5)
    (span,) = rec.spans
    assert span.is_instant
    assert span.duration == 0.0


def test_disabled_recorder_is_a_noop():
    rec = SpanRecorder(enabled=False)
    rec.record("crypto", "x", "m0", "p0", 0.0, 1.0)
    rec.instant("gcs", "y", "d0", "p0", 2.0)
    assert rec.spans == []
    assert rec.dropped == 0


def test_capacity_bound_counts_drops():
    rec = SpanRecorder(capacity=2)
    for i in range(5):
        rec.record("net", f"s{i}", "d0", "p0", float(i), float(i) + 1)
    assert len(rec) == 2
    assert rec.dropped == 3
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SpanRecorder(capacity=0)


def _span(start, end):
    return Span("crypto", "w", "m0", "p0", start, end)


def test_busy_time_merges_overlaps_and_clips():
    spans = [_span(0.0, 4.0), _span(2.0, 6.0), _span(10.0, 12.0)]
    # window [1, 11]: union is [1,6] U [10,11] = 5 + 1
    assert busy_time(spans, 1.0, 11.0) == pytest.approx(6.0)


def test_busy_time_ignores_disjoint_spans():
    spans = [_span(0.0, 1.0), _span(20.0, 30.0)]
    assert busy_time(spans, 5.0, 10.0) == 0.0


def test_busy_time_never_exceeds_window():
    spans = [_span(0.0, 100.0), _span(0.0, 100.0)]
    assert busy_time(spans, 10.0, 20.0) == pytest.approx(10.0)
